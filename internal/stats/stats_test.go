package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, b := range buckets {
		frac := float64(b) / n
		if frac < 0.09 || frac > 0.11 {
			t.Errorf("bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev %.4f, want ~1", w.StdDev())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Errorf("exponential mean %.4f, want ~1", w.Mean())
	}
}

func TestGaussianClamped(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		x := r.Gaussian(50, 30, 16, 64)
		if x < 16 || x > 64 {
			t.Fatalf("Gaussian out of [16,64]: %v", x)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestWelfordMatchesDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := MeanOf(xs)
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean %.12f != %.12f", w.Mean(), mean)
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	direct := ss / float64(len(xs)-1)
	if math.Abs(w.Variance()-direct) > 1e-12 {
		t.Errorf("variance %.12f != %.12f", w.Variance(), direct)
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	// Property: merging two accumulators equals accumulating the
	// concatenation.
	f := func(a, b []float64) bool {
		var wa, wb, wc Welford
		for _, x := range a {
			clean := math.Mod(x, 1000)
			if math.IsNaN(clean) {
				clean = 0
			}
			wa.Add(clean)
			wc.Add(clean)
		}
		for _, x := range b {
			clean := math.Mod(x, 1000)
			if math.IsNaN(clean) {
				clean = 0
			}
			wb.Add(clean)
			wc.Add(clean)
		}
		wa.Merge(wb)
		if wa.N() != wc.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		return math.Abs(wa.Mean()-wc.Mean()) < 1e-6 &&
			math.Abs(wa.Variance()-wc.Variance()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestBucketIndexMonotoneProperty(t *testing.T) {
	// Property: bucketIndex is monotone and bucketBounds contains the
	// value.
	f := func(d uint64) bool {
		d %= 1 << 40
		i := bucketIndex(d)
		lo, hi := bucketBounds(i)
		if d < lo || d >= hi {
			return false
		}
		return bucketIndex(hi) > i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHistogramAccounting(t *testing.T) {
	h := NewDurationHist()
	durations := []uint64{1, 5, 20, 20, 100, 3000, 100000}
	var total uint64
	for _, d := range durations {
		h.Add(d)
		total += d
	}
	if h.N() != uint64(len(durations)) {
		t.Fatalf("N = %d", h.N())
	}
	if h.TotalCycles() != total {
		t.Fatalf("total = %d, want %d", h.TotalCycles(), total)
	}
	var sumPct float64
	for _, b := range h.Buckets() {
		sumPct += b.TimePct
	}
	if math.Abs(sumPct-100) > 1e-9 {
		t.Fatalf("bucket time percentages sum to %v", sumPct)
	}
	if cdf := h.TimeCDFBelow(1 << 40); math.Abs(cdf-100) > 1e-9 {
		t.Fatalf("CDF below infinity = %v", cdf)
	}
	if cdf := h.TimeCDFBelow(2); cdf != float64(1*100)/float64(total) {
		t.Fatalf("CDF below 2 = %v", cdf)
	}
	// Bucket granularity at ~20 is 2 cycles; probe at the next bucket
	// boundary.
	if h.CallCDFBelow(24) < 50 {
		t.Fatalf("expected most calls below 24 cycles, got %v", h.CallCDFBelow(24))
	}
}

func TestHistogramMedianAndMerge(t *testing.T) {
	h := NewDurationHist()
	for i := 0; i < 1000; i++ {
		h.Add(20)
	}
	m := h.MedianCycles()
	if m < 18 || m > 23 {
		t.Errorf("median of constant-20 histogram: %v", m)
	}
	h2 := NewDurationHist()
	for i := 0; i < 1000; i++ {
		h2.Add(40)
	}
	h.Merge(h2)
	if h.N() != 2000 {
		t.Fatalf("merged N = %d", h.N())
	}
	if h.MeanCycles() != 30 {
		t.Fatalf("merged mean = %v", h.MeanCycles())
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Symmetry and standard quantiles.
	if p := StudentTCDF(0, 10); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("CDF(0) = %v", p)
	}
	// t=1.812 at df=10 is the 95th percentile.
	if p := StudentTCDF(1.812, 10); math.Abs(p-0.95) > 0.002 {
		t.Errorf("CDF(1.812, 10) = %v, want ~0.95", p)
	}
	// Large df approaches the normal: t=1.96 -> ~0.975.
	if p := StudentTCDF(1.96, 10000); math.Abs(p-0.975) > 0.002 {
		t.Errorf("CDF(1.96, 10000) = %v, want ~0.975", p)
	}
	for _, tv := range []float64{-3, -1, 0.5, 2.7} {
		if s := StudentTCDF(tv, 7) + StudentTCDF(-tv, 7); math.Abs(s-1) > 1e-9 {
			t.Errorf("CDF symmetry violated at t=%v: %v", tv, s)
		}
	}
}

func TestRegIncBetaComplementProperty(t *testing.T) {
	// Property: I_x(a,b) + I_{1-x}(b,a) == 1.
	f := func(ai, bi uint8, xi uint16) bool {
		a := 0.5 + float64(ai%40)
		b := 0.5 + float64(bi%40)
		x := float64(xi%1000) / 1000
		s := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOneSidedWelchDetectsDifference(t *testing.T) {
	r := NewRNG(3)
	var a, b []float64
	for i := 0; i < 30; i++ {
		a = append(a, 100+r.NormFloat64())
		b = append(b, 95+r.NormFloat64())
	}
	res := OneSidedWelch(a, b, 0.05)
	if !res.Significant {
		t.Errorf("5-sigma difference not significant: p=%v", res.P)
	}
	// And no significance for identical distributions.
	var c, d []float64
	for i := 0; i < 30; i++ {
		c = append(c, 100+r.NormFloat64())
		d = append(d, 100+r.NormFloat64())
	}
	res = OneSidedWelch(c, d, 0.001)
	if res.Significant {
		t.Errorf("identical distributions significant at 0.1%%: p=%v", res.P)
	}
}

func TestOneSidedPairedT(t *testing.T) {
	a := []float64{105, 110, 99, 108, 103, 107}
	b := []float64{104, 108, 98, 106, 102, 105}
	res := OneSidedPairedT(a, b, 0.05)
	if !res.Significant {
		t.Errorf("consistent paired improvement not significant: p=%v", res.P)
	}
	rev := OneSidedPairedT(b, a, 0.05)
	if rev.Significant {
		t.Errorf("reversed pairing must not be significant: p=%v", rev.P)
	}
	zero := OneSidedPairedT([]float64{1, 1, 1}, []float64{1, 1, 1}, 0.05)
	if zero.Significant || zero.P != 1 {
		t.Errorf("no-difference case: p=%v sig=%v", zero.P, zero.Significant)
	}
}

func TestPercentileCycles(t *testing.T) {
	h := NewDurationHist()
	for d := uint64(1); d <= 100; d++ {
		h.Add(d)
	}
	p50 := h.PercentileCycles(50)
	if p50 < 40 || p50 > 60 {
		t.Errorf("p50 of 1..100 = %v", p50)
	}
	p99 := h.PercentileCycles(99)
	if p99 < 90 || p99 > 110 {
		t.Errorf("p99 of 1..100 = %v", p99)
	}
	if h.PercentileCycles(0) > h.PercentileCycles(100) {
		t.Error("percentiles not monotone")
	}
}
