package stats

import "math"

// TTestResult holds the outcome of a one-sided Welch's t-test, as used for
// Table 2 of the paper ("we do not include the workloads for which a
// single-sided Student's T-test fails to reject a hypothesis of full-program
// slowdown with 95+% probability").
type TTestResult struct {
	T           float64 // t statistic
	DF          float64 // Welch-Satterthwaite degrees of freedom
	P           float64 // one-sided p-value for mean(a) > mean(b)
	MeanA       float64
	MeanB       float64
	Significant bool // P < alpha
}

// OneSidedWelch tests H1: mean(a) > mean(b) at significance level alpha.
// In the reproduction, a holds per-seed baseline cycle counts and b holds
// Mallacc cycle counts, so "a > b" means "Mallacc is a speedup".
func OneSidedWelch(a, b []float64, alpha float64) TTestResult {
	ma, mb := MeanOf(a), MeanOf(b)
	va, vb := variance(a), variance(b)
	na, nb := float64(len(a)), float64(len(b))
	res := TTestResult{MeanA: ma, MeanB: mb}
	if na < 2 || nb < 2 {
		res.P = 1
		return res
	}
	se2 := va/na + vb/nb
	if se2 == 0 {
		// Identical, zero-variance samples: no evidence either way unless
		// the means actually differ (then the difference is exact).
		if ma > mb {
			res.T = math.Inf(1)
			res.P = 0
			res.Significant = true
		} else {
			res.P = 1
		}
		res.DF = na + nb - 2
		return res
	}
	res.T = (ma - mb) / math.Sqrt(se2)
	num := se2 * se2
	den := (va/na)*(va/na)/(na-1) + (vb/nb)*(vb/nb)/(nb-1)
	res.DF = num / den
	res.P = 1 - StudentTCDF(res.T, res.DF)
	res.Significant = res.P < alpha
	return res
}

// OneSidedPairedT tests H1: mean(a-b) > 0 with a paired (one-sample on
// differences) Student's t-test. Pairing is the natural fit for Table 2,
// where each seed produces one baseline and one Mallacc measurement of the
// same request stream.
func OneSidedPairedT(a, b []float64, alpha float64) TTestResult {
	if len(a) != len(b) {
		panic("stats: paired t-test with mismatched samples")
	}
	n := len(a)
	res := TTestResult{MeanA: MeanOf(a), MeanB: MeanOf(b)}
	if n < 2 {
		res.P = 1
		return res
	}
	var w Welford
	for i := range a {
		w.Add(a[i] - b[i])
	}
	sd := w.StdDev()
	res.DF = float64(n - 1)
	if sd == 0 {
		if w.Mean() > 0 {
			res.T = math.Inf(1)
			res.P = 0
			res.Significant = true
		} else {
			res.P = 1
		}
		return res
	}
	res.T = w.Mean() / (sd / math.Sqrt(float64(n)))
	res.P = 1 - StudentTCDF(res.T, res.DF)
	res.Significant = res.P < alpha
	return res
}

func variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// StudentTCDF returns P(T <= t) for Student's t distribution with df
// degrees of freedom, computed via the regularized incomplete beta function.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style), accurate
// to ~1e-12 over the domain needed for t-tests.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
