package tcmalloc_test

import (
	"testing"

	"mallacc/internal/tcmalloc"
)

// benchHeap builds a heap with a warm thread cache for size 64.
func benchHeap(b *testing.B, mode tcmalloc.Mode) (*tcmalloc.Heap, *tcmalloc.ThreadCache) {
	b.Helper()
	cfg := tcmalloc.DefaultConfig()
	cfg.Mode = mode
	cfg.SampleInterval = 0 // never sample: isolate the fast path
	h := tcmalloc.New(cfg)
	tc := h.NewThread()
	var warm []uint64
	for i := 0; i < 64; i++ {
		h.Em.Reset()
		warm = append(warm, h.Malloc(tc, 64))
	}
	for _, a := range warm {
		h.Em.Reset()
		h.Free(tc, a, 64)
	}
	return h, tc
}

// BenchmarkFastAllocFree measures the functional+emission cost of a thread-
// cache-hit malloc/free pair — the allocator side of every simulated call.
func BenchmarkFastAllocFree(b *testing.B) {
	h, tc := benchHeap(b, tcmalloc.ModeBaseline)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Em.Reset()
		a := h.Malloc(tc, 64)
		h.Em.Reset()
		h.Free(tc, a, 64)
	}
}

// BenchmarkFastAllocFreeMallacc does the same with accelerator emission.
func BenchmarkFastAllocFreeMallacc(b *testing.B) {
	h, tc := benchHeap(b, tcmalloc.ModeMallacc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Em.Reset()
		a := h.Malloc(tc, 64)
		h.Em.Reset()
		h.Free(tc, a, 64)
	}
}

// BenchmarkFastAllocFreeNoEmit isolates the pure functional allocator (trace
// emission disabled), the floor the emitter's cost is judged against.
func BenchmarkFastAllocFreeNoEmit(b *testing.B) {
	h, tc := benchHeap(b, tcmalloc.ModeBaseline)
	h.Em.SetDisabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Em.Reset()
		a := h.Malloc(tc, 64)
		h.Em.Reset()
		h.Free(tc, a, 64)
	}
}
