package tcmalloc

import (
	"fmt"

	"mallacc/internal/mem"
	"mallacc/internal/uop"
)

// maxTransferEntries bounds the per-class transfer cache (gperftools
// kMaxNumTransferEntries).
const maxTransferEntries = 64

// batch is one transfer-cache slot: a chain of NumToMove objects already
// linked through simulated memory.
type batch struct {
	head  uint64
	count int
}

// CentralFreeList is the per-size-class shared pool: a transfer cache of
// ready-made batches in front of span-resident object lists, refilled from
// the page heap. All operations here are the paper's "orders of magnitude
// slower" middle tier, guarded by a lock.
type CentralFreeList struct {
	class     uint8
	objSize   uint64
	pagesPer  uint64
	batchSize int

	lockAddr uint64
	headAddr uint64 // metadata block for counters

	// transfer cache slots.
	slots []batch

	// nonempty holds spans with free objects; empty holds fully allocated
	// spans.
	nonempty spanList
	empty    spanList

	heap *Heap

	// lockHeldAt records the emitter position at acquisition so unlock can
	// report the hold length (in uops) to the heap's LockModel.
	lockHeldAt int

	// Stats
	TransferHits   uint64
	TransferMisses uint64
	SpansRequested uint64
	SpansReturned  uint64
	FreeObjects    int
}

// Reset empties the list back to its just-built state: no transfer-cache
// batches, no spans, no statistics. The lock and counter words keep their
// construction-time arena addresses.
func (c *CentralFreeList) Reset() {
	c.slots = c.slots[:0]
	c.nonempty = spanList{}
	c.empty = spanList{}
	c.lockHeldAt = 0
	c.TransferHits, c.TransferMisses = 0, 0
	c.SpansRequested, c.SpansReturned = 0, 0
	c.FreeObjects = 0
}

func newCentralFreeList(h *Heap, class uint8) *CentralFreeList {
	return &CentralFreeList{
		class:     class,
		objSize:   h.SizeMap.ClassSize(class),
		pagesPer:  h.SizeMap.ClassPages(class),
		batchSize: h.SizeMap.NumToMove(class),
		lockAddr:  h.Arena.Alloc(64, 64),
		headAddr:  h.Arena.Alloc(64, 64),
		heap:      h,
	}
}

func (c *CentralFreeList) lock(e *uop.Emitter) uop.Val {
	lk := e.Load(c.lockAddr, uop.NoDep)
	v := e.ALUWithLat(17, lk, uop.NoDep)
	if lm := c.heap.Lock; lm != nil {
		if wait := lm.Acquire(LockCentral, c.class); wait > 0 {
			v = e.Stall(wait, v)
		}
		c.lockHeldAt = e.Len()
	}
	return v
}

func (c *CentralFreeList) unlock(e *uop.Emitter) {
	if lm := c.heap.Lock; lm != nil {
		lm.Release(LockCentral, c.class, e.Len()-c.lockHeldAt)
	}
	e.Store(c.lockAddr, uop.NoDep, uop.NoDep)
}

// RemoveRange hands out a chain of up to n objects (head-linked in
// simulated memory) and its length. A full-batch request that hits the
// transfer cache is nearly free; otherwise objects come off span free
// lists, populating a new span from the page heap when dry.
func (c *CentralFreeList) RemoveRange(e *uop.Emitter, n int) (head uint64, count int) {
	if n == c.batchSize && len(c.slots) > 0 {
		// Transfer-cache hit: one locked slot pop.
		dep := c.lock(e)
		e.Branch(siteTransferHit, true, dep)
		b := c.slots[len(c.slots)-1]
		c.slots = c.slots[:len(c.slots)-1]
		e.Load(c.headAddr, dep)
		e.Store(c.headAddr, dep, uop.NoDep)
		c.unlock(e)
		c.TransferHits++
		c.FreeObjects -= b.count
		return b.head, b.count
	}
	c.TransferMisses++
	dep := c.lock(e)
	e.Branch(siteTransferHit, false, dep)

	var chain uint64
	got := 0
	for got < n {
		s := c.spanWithFree(e)
		if s == nil {
			c.populate(e)
			s = c.spanWithFree(e)
			if s == nil {
				break
			}
		}
		// Pop one object from the span's free list: the dependent
		// load/load/store of Figure 7, against cold span memory.
		hdr := e.Load(s.MetaAddr, uop.NoDep)
		obj := s.FreeHead
		nxt := c.heap.Space.ReadWord(obj)
		nxtDep := e.Load(obj, hdr)
		e.Store(s.MetaAddr, nxtDep, uop.NoDep)
		s.FreeHead = nxt
		s.FreeCount--
		s.Refcount++
		if s.FreeCount == 0 {
			c.nonempty.remove(s)
			c.empty.pushFront(s)
		}
		// Link onto the outgoing chain.
		c.heap.Space.WriteWord(obj, chain)
		e.Store(obj, nxtDep, uop.NoDep)
		chain = obj
		got++
		e.Branch(siteFetchLoop, got < n, nxtDep)
	}
	c.unlock(e)
	c.FreeObjects -= got
	return chain, got
}

// InsertRange takes back a chain of count objects. Full batches go to the
// transfer cache when there is room; otherwise each object returns to its
// owning span (found through the page map), and spans whose last object
// comes home are released to the page heap.
func (c *CentralFreeList) InsertRange(e *uop.Emitter, head uint64, count int) {
	if count == c.batchSize && len(c.slots) < maxTransferEntries {
		dep := c.lock(e)
		e.Branch(siteTransferHit, true, dep)
		c.slots = append(c.slots, batch{head: head, count: count})
		e.Store(c.headAddr, dep, uop.NoDep)
		c.unlock(e)
		c.FreeObjects += count
		return
	}
	dep := c.lock(e)
	e.Branch(siteTransferHit, false, dep)
	obj := head
	for i := 0; i < count; i++ {
		if obj == 0 {
			panic("tcmalloc: short chain in InsertRange")
		}
		next := c.heap.Space.ReadWord(obj)
		nextDep := e.Load(obj, dep)
		c.releaseToSpan(e, obj, nextDep)
		obj = next
		e.Branch(siteReleaseLoop, i+1 < count, nextDep)
	}
	c.unlock(e)
	c.FreeObjects += count
}

// releaseToSpan returns one object to its span's free list.
func (c *CentralFreeList) releaseToSpan(e *uop.Emitter, obj uint64, dep uop.Val) {
	s, walkDep := c.heap.PageHeap.PageMap().EmitGet(e, obj>>mem.PageShift, dep)
	if s == nil {
		panic(fmt.Sprintf("tcmalloc: object %#x has no span", obj))
	}
	if s.FreeCount == 0 && s.Location == SpanInUse {
		// Span moves from empty back to nonempty.
		c.empty.remove(s)
		c.nonempty.pushFront(s)
	}
	c.heap.Space.WriteWord(obj, s.FreeHead)
	e.Store(obj, walkDep, uop.NoDep)
	e.Store(s.MetaAddr, walkDep, uop.NoDep)
	s.FreeHead = obj
	s.FreeCount++
	s.Refcount--
	if s.Refcount == 0 {
		// Whole span free: unlink its objects and give the pages back.
		c.nonempty.remove(s)
		c.releaseSpanObjects(s)
		c.FreeObjects -= s.FreeCount
		s.FreeHead = 0
		s.FreeCount = 0
		c.heap.PageHeap.Delete(e, s)
		c.SpansReturned++
	}
}

// releaseSpanObjects clears the in-band next pointers of a span being
// returned so the simulated word store does not accumulate stale entries.
func (c *CentralFreeList) releaseSpanObjects(s *Span) {
	obj := s.FreeHead
	for obj != 0 {
		next := c.heap.Space.ReadWord(obj)
		c.heap.Space.WriteWord(obj, 0)
		obj = next
	}
}

// spanWithFree returns a span that has free objects, or nil.
func (c *CentralFreeList) spanWithFree(e *uop.Emitter) *Span {
	dep := e.Load(c.headAddr, uop.NoDep)
	if c.nonempty.empty() {
		e.Branch(siteSpanHasFree, false, dep)
		return nil
	}
	e.Branch(siteSpanHasFree, true, dep)
	return c.nonempty.head
}

// populate fetches a fresh span from the page heap and carves it into
// linked objects — the expensive "breaks up the span into appropriately
// sized chunks" path of Sec. 3.1.
func (c *CentralFreeList) populate(e *uop.Emitter) {
	s := c.heap.PageHeap.New(e, c.pagesPer)
	s.SizeClass = c.class
	c.SpansRequested++
	base := s.StartAddr()
	nObjs := int(s.ByteLen() / c.objSize)
	// Carve: link every object through its first word, last first so the
	// list runs in address order.
	var headVal uint64
	dep := e.ALU(uop.NoDep, uop.NoDep)
	for i := nObjs - 1; i >= 0; i-- {
		obj := base + uint64(i)*c.objSize
		c.heap.Space.WriteWord(obj, headVal)
		dep = e.ALU(dep, uop.NoDep)
		e.Store(obj, dep, uop.NoDep)
		headVal = obj
	}
	e.Branch(siteCarveLoop, false, dep)
	s.FreeHead = headVal
	s.FreeCount = nObjs
	s.Refcount = 0
	c.nonempty.pushFront(s)
	c.FreeObjects += nObjs
	e.Store(s.MetaAddr, dep, uop.NoDep)
}

// CheckInvariants verifies span accounting; tests call it.
func (c *CentralFreeList) CheckInvariants() {
	count := 0
	for s := c.nonempty.head; s != nil; s = s.next {
		if s.FreeCount == 0 {
			panic("tcmalloc: empty span on nonempty list")
		}
		n := 0
		for obj := s.FreeHead; obj != 0; obj = c.heap.Space.ReadWord(obj) {
			n++
			if n > s.FreeCount {
				break
			}
		}
		if n != s.FreeCount {
			panic(fmt.Sprintf("tcmalloc: span free list length %d != recorded %d (class %d)", n, s.FreeCount, c.class))
		}
		count += s.FreeCount
	}
	for s := c.empty.head; s != nil; s = s.next {
		if s.FreeCount != 0 {
			panic("tcmalloc: span with free objects on empty list")
		}
	}
	for _, b := range c.slots {
		count += b.count
	}
	if count != c.FreeObjects {
		panic(fmt.Sprintf("tcmalloc: central class %d free object accounting: counted %d, recorded %d", c.class, count, c.FreeObjects))
	}
}
