package tcmalloc

import (
	"fmt"

	"mallacc/internal/core"
	"mallacc/internal/mem"
	"mallacc/internal/stats"
	"mallacc/internal/telemetry"
	"mallacc/internal/uop"
)

// Mode selects which fast path the allocator emits.
type Mode uint8

const (
	// ModeBaseline is unmodified TCMalloc: software size-class
	// computation, software sampling check, software list pop/push.
	ModeBaseline Mode = iota
	// ModeMallacc uses the five accelerator instructions per the paper's
	// Figures 10 and 12, with software fallbacks on malloc-cache misses.
	ModeMallacc
)

func (m Mode) String() string {
	if m == ModeMallacc {
		return "mallacc"
	}
	return "baseline"
}

// Config parameterizes a Heap.
type Config struct {
	Mode Mode
	// MallocCache configures the accelerator (ModeMallacc only).
	MallocCache core.Config
	// SizedDelete models compiling with -fsized-deallocation: free()
	// receives the object size and can skip the page-map walk ("we assume
	// sized delete when applicable", Sec. 3.3).
	SizedDelete bool
	// SampleInterval is the mean bytes between sampled allocations
	// (0 disables sampling).
	SampleInterval int64
	// Seed drives the sampler's exponential draws.
	Seed uint64
	// Ablate selectively disables accelerator components (ModeMallacc
	// only), for the component-level ablation study.
	Ablate Ablation
}

// Ablation switches off individual Mallacc components while keeping the
// rest of the accelerated fast path, quantifying each component's
// contribution.
type Ablation struct {
	// NoHWSampler keeps the software sampling sequence on the fast path
	// instead of the PMU counter (Sec. 4.2).
	NoHWSampler bool
	// NoSizeCache drops mcszlookup: the size class is always computed in
	// software (entries are still maintained so list caching works).
	NoSizeCache bool
	// NoListCache drops mchdpop/mchdpush/mcnxtprefetch: free-list
	// operations always run the software sequences.
	NoListCache bool
}

// DefaultConfig returns a baseline heap configuration with sampling and
// sized delete on.
func DefaultConfig() Config {
	return Config{
		Mode:           ModeBaseline,
		MallocCache:    core.DefaultConfig(),
		SizedDelete:    true,
		SampleInterval: DefaultSampleInterval,
		Seed:           1,
	}
}

// HeapStats aggregates allocator-level event counts.
type HeapStats struct {
	Mallocs        uint64
	Frees          uint64
	FastHits       uint64 // thread-cache hits
	CentralFetches uint64 // thread-cache misses
	LargeMallocs   uint64
	LargeFrees     uint64
	Sampled        uint64
}

// Heap is the top-level allocator instance: simulated memory, the size
// map, the page heap, per-class central lists, per-thread caches, and (in
// ModeMallacc) the accelerator state.
type Heap struct {
	Space    *mem.Space
	Arena    *mem.Arena
	SizeMap  *SizeMap
	PageHeap *PageHeap
	Central  []*CentralFreeList

	// MC is the malloc cache (nil in baseline mode).
	MC *core.MallocCache
	// HWCounter is the sampling performance counter (nil in baseline).
	HWCounter *core.SampleCounter

	// Em receives the micro-op trace of the current call. The driver
	// resets it before each Malloc/Free and feeds the trace to the CPU
	// model afterwards.
	Em *uop.Emitter

	// Lock is the shared-lock contention hook (nil when single-core);
	// install it with SetLockModel so the page heap sees it too.
	Lock LockModel

	Cfg     Config
	rng     *stats.RNG
	threads []*ThreadCache
	Stats   HeapStats

	// Pooled-rewind marks (MarkClean/ResetClean): the simulated space and
	// metadata arena as of the moment the owning engine finished
	// construction.
	spaceMark mem.SpaceMark
	arenaMark mem.ArenaMark
	marked    bool
}

// New builds a heap over a fresh simulated address space.
func New(cfg Config) *Heap {
	space := mem.NewDefaultSpace()
	arena := mem.NewArena(space, 8<<20)
	h := &Heap{
		Space: space,
		Arena: arena,
		Cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed ^ 0xa11c),
		Em:    uop.NewEmitter(),
	}
	h.SizeMap = NewSizeMap(arena)
	pm := NewPageMap(arena)
	h.PageHeap = NewPageHeap(space, arena, pm)
	h.Central = make([]*CentralFreeList, h.SizeMap.NumClasses())
	for c := 1; c < h.SizeMap.NumClasses(); c++ {
		h.Central[c] = newCentralFreeList(h, uint8(c))
	}
	if cfg.Mode == ModeMallacc {
		h.MC = core.New(cfg.MallocCache)
		h.HWCounter = &core.SampleCounter{}
	}
	return h
}

// NewThread registers a new thread cache.
func (h *Heap) NewThread() *ThreadCache {
	tc := newThreadCache(h, len(h.threads))
	tc.stackAddr = h.Arena.Alloc(4096, 64)
	tc.tlsAddr = h.Arena.Alloc(8, 8)
	tc.sampler = NewSampler(h.rng.Fork(), h.Cfg.SampleInterval, h.Arena.Alloc(64, 64))
	h.threads = append(h.threads, tc)
	return tc
}

// Threads returns the registered thread caches.
func (h *Heap) Threads() []*ThreadCache { return h.threads }

// MarkClean snapshots the heap's post-construction state (simulated words,
// sbrk pointer, arena bump pointer) so ResetClean can rewind to it. Call it
// once, after every NewThread, before the first allocation.
func (h *Heap) MarkClean() {
	h.spaceMark = h.Space.Mark()
	h.arenaMark = h.Arena.Mark()
	h.marked = true
}

// ResetClean rewinds the heap to the MarkClean state so a pooled simulation
// can rerun on it. Every tier is restored to its just-built condition, and
// the sampler RNG streams are reseeded and re-forked in thread order —
// exactly the construction sequence — so a rerun with the same seed is
// byte-identical to a run on a fresh heap.
func (h *Heap) ResetClean() {
	if !h.marked {
		panic("tcmalloc: ResetClean without MarkClean")
	}
	h.Space.Reset(h.spaceMark)
	h.Arena.Reset(h.arenaMark)
	h.PageHeap.Reset()
	for _, c := range h.Central {
		if c != nil {
			c.Reset()
		}
	}
	h.rng.Reseed(h.Cfg.Seed ^ 0xa11c)
	for _, tc := range h.threads {
		tc.Reset(h.rng.Fork())
	}
	if h.MC != nil {
		h.MC.Reset()
	}
	if h.HWCounter != nil {
		h.HWCounter.Reset()
	}
	h.Stats = HeapStats{}
}

// mcFor resolves the malloc cache a call from tc should use: the thread's
// core-local cache when installed (multicore engine), else the heap's.
func (h *Heap) mcFor(tc *ThreadCache) *core.MallocCache {
	if tc != nil && tc.MC != nil {
		return tc.MC
	}
	return h.MC
}

// hwFor resolves the sampling PMU counter like mcFor.
func (h *Heap) hwFor(tc *ThreadCache) *core.SampleCounter {
	if tc != nil && tc.HW != nil {
		return tc.HW
	}
	return h.HWCounter
}

// emFor resolves the trace emitter a call from tc writes to: the thread's
// core-local emitter when installed, else the heap's shared one.
func (h *Heap) emFor(tc *ThreadCache) *uop.Emitter {
	if tc != nil && tc.Em != nil {
		return tc.Em
	}
	return h.Em
}

// StatsSnapshot returns the heap-level event counts summed with every
// thread cache's shard. Hot paths bump the calling thread's shard so
// concurrent cores never write one cache line; readers (metrics closures,
// results, tests) see the merged view here.
func (h *Heap) StatsSnapshot() HeapStats {
	s := h.Stats
	for _, tc := range h.threads {
		s.Mallocs += tc.Stats.Mallocs
		s.Frees += tc.Stats.Frees
		s.FastHits += tc.Stats.FastHits
		s.CentralFetches += tc.Stats.CentralFetches
		s.LargeMallocs += tc.Stats.LargeMallocs
		s.LargeFrees += tc.Stats.LargeFrees
		s.Sampled += tc.Stats.Sampled
	}
	return s
}

// FlushMallocCache invalidates the accelerator state (context switch).
func (h *Heap) FlushMallocCache() {
	if h.MC != nil {
		h.MC.Flush()
	}
}

// RegisterMetrics adds every allocator tier's counters to reg: top-level
// events under "heap.*", the span allocator under "pageheap.*", the central
// free lists (aggregated across size classes) under "central.*", the thread
// caches (aggregated across threads) under "tc.*", the sampling machinery
// under "sampler.*", and — in ModeMallacc — the malloc cache under "mc.*".
// Aggregation closures read live state, so threads registered after this
// call are still counted.
func (h *Heap) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("heap.mallocs", func() uint64 { return h.StatsSnapshot().Mallocs })
	reg.Counter("heap.frees", func() uint64 { return h.StatsSnapshot().Frees })
	reg.Counter("heap.fast_hits", func() uint64 { return h.StatsSnapshot().FastHits })
	reg.Counter("heap.central_fetches", func() uint64 { return h.StatsSnapshot().CentralFetches })
	reg.Counter("heap.large_mallocs", func() uint64 { return h.StatsSnapshot().LargeMallocs })
	reg.Counter("heap.large_frees", func() uint64 { return h.StatsSnapshot().LargeFrees })
	reg.Counter("heap.sampled", func() uint64 { return h.StatsSnapshot().Sampled })

	ph := h.PageHeap
	reg.Counter("pageheap.spans.allocated", func() uint64 { return ph.SpansAllocated })
	reg.Counter("pageheap.spans.freed", func() uint64 { return ph.SpansFreed })
	reg.Counter("pageheap.spans.split", func() uint64 { return ph.SpansSplit })
	reg.Counter("pageheap.grow_calls", func() uint64 { return ph.GrowCalls })
	reg.Gauge("pageheap.free_pages", func() float64 { return float64(ph.FreePages) })

	central := func(read func(*CentralFreeList) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, c := range h.Central {
				if c != nil {
					t += read(c)
				}
			}
			return t
		}
	}
	reg.Counter("central.transfer.hits", central(func(c *CentralFreeList) uint64 { return c.TransferHits }))
	reg.Counter("central.transfer.misses", central(func(c *CentralFreeList) uint64 { return c.TransferMisses }))
	reg.Counter("central.spans.requested", central(func(c *CentralFreeList) uint64 { return c.SpansRequested }))
	reg.Counter("central.spans.returned", central(func(c *CentralFreeList) uint64 { return c.SpansReturned }))
	reg.Gauge("central.free_objects", func() float64 {
		var t int
		for _, c := range h.Central {
			if c != nil {
				t += c.FreeObjects
			}
		}
		return float64(t)
	})

	thread := func(read func(*ThreadCache) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, tc := range h.threads {
				t += read(tc)
			}
			return t
		}
	}
	reg.Counter("tc.hits", thread(func(tc *ThreadCache) uint64 { return tc.Hits }))
	reg.Counter("tc.misses", thread(func(tc *ThreadCache) uint64 { return tc.Misses }))
	reg.Counter("tc.scavenges", thread(func(tc *ThreadCache) uint64 { return tc.Scavenges }))
	reg.Counter("tc.list_too_longs", thread(func(tc *ThreadCache) uint64 { return tc.ListTooLongs }))
	reg.Gauge("tc.hit_rate", func() float64 {
		var hits, misses uint64
		for _, tc := range h.threads {
			hits += tc.Hits
			misses += tc.Misses
		}
		return telemetry.Ratio(hits, misses)
	})
	reg.Counter("sampler.samples", thread(func(tc *ThreadCache) uint64 { return tc.sampler.Samples }))

	if h.HWCounter != nil {
		reg.Counter("sampler.hw.interrupts", func() uint64 { return h.HWCounter.Interrupts })
		reg.Counter("sampler.hw.bytes", func() uint64 { return h.HWCounter.BytesAccumulated })
	}
	if h.MC != nil {
		h.MC.RegisterMetrics(reg)
	}
}

// Malloc services one allocation request from thread tc, emitting the
// call's micro-ops into h.Em, and returns the simulated address.
//
// Contract in ModeMallacc: the malloc cache models a single in-core
// structure, so changing the active thread between calls must be
// accompanied by FlushMallocCache — on real hardware that change is a
// context switch, and Sec. 4.1's flush rule applies. Violations are
// detected and panic ("malloc cache out of sync").
func (h *Heap) Malloc(tc *ThreadCache, size uint64) uint64 {
	e := h.emFor(tc)
	tc.Stats.Mallocs++
	if size == 0 {
		size = 1
	}

	// Function prologue: save callee-saved registers, set up the frame and
	// arguments (the fast path is ~40 static x86 instructions, Sec. 3.3).
	e.Step(uop.StepCallOverhead)
	e.Store(tc.stackAddr, uop.NoDep, uop.NoDep)
	e.Store(tc.stackAddr+8, uop.NoDep, uop.NoDep)
	e.Store(tc.stackAddr+16, uop.NoDep, uop.NoDep)
	e.ALU(uop.NoDep, uop.NoDep)

	// Thread-cache pointer from TLS.
	e.Step(uop.StepOther)
	tls := e.Load(tc.tlsAddr, uop.NoDep)

	// Small-size check.
	cmp := e.ALU(uop.NoDep, uop.NoDep)
	if size > MaxSize {
		e.Branch(siteIsSmall, true, cmp)
		addr := h.mallocLarge(e, tc, size)
		h.emitEpilogue(e, tc)
		return addr
	}
	e.Branch(siteIsSmall, false, cmp)

	// Step 1: size class (Fig. 3 / Fig. 5 / Fig. 10).
	class, rounded, classDep, _ := h.sizeClassStep(e, tc, size)

	// Step 2: sampling (Fig. 3 / Sec. 4.2).
	h.samplingStep(e, tc, size)

	// Step 3: pop the free-list head (Fig. 7 / Fig. 12). The list address
	// needs only the size class, not the rounded size, so it depends on
	// the class lookup alone.
	la := e.ALU(classDep, tls) // address of the class's free list
	result := h.popStep(e, tc, class, rounded, classDep, la)

	// Metadata updates and epilogue (part of the non-accelerated ~50%).
	// The metadata address derives from the class register directly, in
	// parallel with the list walk.
	e.Step(uop.StepOther)
	tc.metaUpdateEmit(e, class, classDep)
	h.emitEpilogue(e, tc)
	return result
}

// sizeClassStep computes (class, rounded size) emitting either the
// baseline table walk or the mcszlookup/mcszupdate pair. classDep is the
// op producing the size class (used for free-list addressing), sizeDep the
// op producing the rounded size (used only for byte accounting).
func (h *Heap) sizeClassStep(e *uop.Emitter, tc *ThreadCache, size uint64) (class uint8, rounded uint64, classDep, sizeDep uop.Val) {
	e.Step(uop.StepSizeClass)
	class, rounded, _ = h.SizeMap.ClassFor(size)
	mc := h.mcFor(tc)
	if mc == nil {
		classDep, sizeDep = h.emitSWSizeClass(e, size, class)
		return class, rounded, classDep, sizeDep
	}
	key, hiKey := size, rounded
	var lat uint8
	if mc.Config().IndexMode {
		key = ClassIndex(size)
		hiKey = ClassIndex(rounded)
		lat = 2 // dedicated index hardware adds one cycle (Sec. 4.1)
	}
	if h.Cfg.Ablate.NoSizeCache {
		// Size-cache ablation: always compute in software, but keep the
		// entries maintained so the list cache still has somewhere to
		// live.
		clsDep, swDep := h.emitSWSizeClass(e, size, class)
		entry := mc.SzUpdate(key, hiKey, rounded, class)
		e.Mallacc(uop.McSzUpdate, entry, false, 0, swDep, 0)
		return class, rounded, clsDep, swDep
	}
	entry, cls, alloc, ok := mc.SzLookup(key)
	szDep := e.Mallacc(uop.McSzLookup, entry, ok, 0, uop.NoDep, lat)
	e.Branch(siteMcSzHit, !ok, szDep) // fall back on miss
	if ok {
		if cls != class || alloc != rounded {
			panic(fmt.Sprintf("tcmalloc: malloc cache returned class %d/%d for size %d (want %d/%d)",
				cls, alloc, size, class, rounded))
		}
		return class, rounded, szDep, szDep
	}
	clsDep, swDep := h.emitSWSizeClass(e, size, class)
	entry = mc.SzUpdate(key, hiKey, rounded, class)
	e.Mallacc(uop.McSzUpdate, entry, false, 0, swDep, 0)
	return class, rounded, clsDep, swDep
}

// emitSWSizeClass emits the Figure 5 software sequence: compare+branch on
// the small threshold, add+shift to form the index, then the two dependent
// table loads. It returns the class-producing and size-producing loads.
func (h *Heap) emitSWSizeClass(e *uop.Emitter, size uint64, class uint8) (classDep, sizeDep uop.Val) {
	cmp := e.ALU(uop.NoDep, uop.NoDep)
	e.Branch(siteSizeBranch, size > MaxSmallSize, cmp)
	idx := e.ALU(uop.NoDep, uop.NoDep) // add
	idx = e.ALU(idx, uop.NoDep)        // shift
	l1 := e.Load(h.SizeMap.ClassArrayAddr()+ClassIndex(size), idx)
	l2 := e.Load(h.SizeMap.ClassToSizeAddr()+uint64(class)*8, l1)
	return l1, l2
}

// emitFreeSizeClass emits free()'s sized-delete class computation: it needs
// only the class, not the rounded size, so it is one table load. Figure 12
// shows free is not accelerated here — the class arrives in a register —
// so both modes emit the same software sequence.
func (h *Heap) emitFreeSizeClass(e *uop.Emitter, size uint64, class uint8) uop.Val {
	cmp := e.ALU(uop.NoDep, uop.NoDep)
	e.Branch(siteSizeBranch, size > MaxSmallSize, cmp)
	idx := e.ALU(uop.NoDep, uop.NoDep)
	idx = e.ALU(idx, uop.NoDep)
	return e.Load(h.SizeMap.ClassArrayAddr()+ClassIndex(size), idx)
}

// samplingStep performs the per-allocation sampling work: the software
// counter sequence in baseline, the PMU counter (no fast-path work) with
// Mallacc. A triggered sample pays the capture cost in both modes.
func (h *Heap) samplingStep(e *uop.Emitter, tc *ThreadCache, size uint64) {
	if h.Cfg.SampleInterval <= 0 {
		return
	}
	// Which allocations get sampled is a property of the sampler's
	// exponential draw stream, identical in every configuration; the
	// accelerator only changes *how* the countdown is maintained: a PMU
	// counter off the fast path instead of the per-call load/decrement/
	// compare/store sequence.
	sampled := tc.sampler.Account(size)
	if hw := h.hwFor(tc); hw != nil && !h.Cfg.Ablate.NoHWSampler {
		// The PMU counter mirrors the sampler's countdown exactly; only
		// its statistics are tracked here — no fast-path micro-ops.
		hw.BytesAccumulated += size
		if sampled {
			hw.Interrupts++
		}
	} else {
		e.Step(uop.StepSampling)
		c := e.Load(tc.sampler.CounterAddr(), uop.NoDep)
		a := e.ALU(c, uop.NoDep)
		e.Store(tc.sampler.CounterAddr(), a, uop.NoDep)
		e.Branch(siteSampleCheck, sampled, a)
	}
	if sampled {
		tc.Stats.Sampled++
		h.emitSampledAllocation(e, tc)
	}
}

// emitSampledAllocation charges the stack-trace capture of a sampled
// allocation: a serial unwind through the stack plus bookkeeping.
func (h *Heap) emitSampledAllocation(e *uop.Emitter, tc *ThreadCache) {
	prev := e.Step(uop.StepOther)
	dep := uop.NoDep
	for i := 0; i < 32; i++ {
		dep = e.Load(tc.stackAddr+uint64(i)*16, dep)
		dep = e.ALU(dep, uop.NoDep)
	}
	for i := 0; i < 6; i++ {
		dep = e.ALUWithLat(150, dep, uop.NoDep)
	}
	e.Step(prev)
}

// popStep removes and returns the head of class's free list via the mode's
// fast path, falling back to the central caches when empty.
func (h *Heap) popStep(e *uop.Emitter, tc *ThreadCache, class uint8, rounded uint64, classDep, la uop.Val) uint64 {
	e.Step(uop.StepPushPop)
	l := &tc.lists[class]
	var result uint64
	var popDep uop.Val

	if mc := h.mcFor(tc); mc != nil && !h.Cfg.Ablate.NoListCache {
		// mchdpop takes only the size class (Fig. 12); the list address is
		// needed just for the head-update store, off the critical path.
		entry, hd, nx, ok := mc.HdPop(class)
		popDep = e.Mallacc(uop.McHdPop, entry, ok, 0, classDep, 0)
		e.Branch(siteMcPopHit, !ok, popDep)
		switch {
		case ok && mc.Config().NoNextSlot:
			// Head-only ablation: the cached head avoids the head-pointer
			// load, but software must still execute the dependent *head
			// load to find the next element — the latency the full design
			// removes.
			realHead := h.Space.ReadWord(l.headAddr)
			if hd != realHead {
				panic(fmt.Sprintf("tcmalloc: malloc cache (head-only) out of sync on class %d: cached %#x real %#x",
					class, hd, realHead))
			}
			next := h.Space.ReadWord(hd)
			nDep := e.Load(hd, popDep)
			e.Store(l.headAddr, la, nDep)
			h.Space.WriteWord(l.headAddr, next)
			l.length--
			tc.size -= rounded
			tc.Hits++
			tc.Stats.FastHits++
			result = hd
		case ok:
			// Validate the model's core invariant: cached copies always
			// mirror the real list.
			realHead := h.Space.ReadWord(l.headAddr)
			if hd != realHead || nx != h.Space.ReadWord(hd) {
				panic(fmt.Sprintf("tcmalloc: malloc cache out of sync on class %d: cached (%#x,%#x) real (%#x,%#x)",
					class, hd, nx, realHead, h.Space.ReadWord(realHead)))
			}
			// Software updates the real head without touching *head —
			// the long-latency load the accelerator removes.
			e.Store(l.headAddr, la, popDep)
			h.Space.WriteWord(l.headAddr, nx)
			l.length--
			tc.size -= rounded
			tc.Hits++
			tc.Stats.FastHits++
			result = hd
		default:
			result = h.popFallback(e, tc, class, la)
		}
		// mcnxtprefetch on the way out (Fig. 12 malloc_ret): refill the
		// cached pair from the new real head.
		if newHead := h.Space.ReadWord(l.headAddr); newHead != 0 {
			v := h.Space.ReadWord(newHead)
			en := mc.NxtPrefetch(class, newHead, v)
			e.Mallacc(uop.McNxtPrefetch, en, en >= 0, newHead, popDep, 0)
		}
		return result
	}

	// Baseline: load head, test, pop or refill.
	hDep := e.Load(l.headAddr, la)
	if l.length == 0 {
		e.Branch(siteListEmpty, true, hDep)
		return h.centralFetch(e, tc, class)
	}
	e.Branch(siteListEmpty, false, hDep)
	head := h.Space.ReadWord(l.headAddr)
	next := h.Space.ReadWord(head)
	nDep := e.Load(head, hDep) // the dependent *head load (Fig. 7)
	e.Store(l.headAddr, nDep, uop.NoDep)
	h.Space.WriteWord(l.headAddr, next)
	l.length--
	tc.size -= rounded
	tc.Hits++
	tc.Stats.FastHits++
	return head
}

// popFallback is the Mallacc miss path: the original software pop
// (cache_fallback in Fig. 12), or a central-cache refill if the real list
// is empty too.
func (h *Heap) popFallback(e *uop.Emitter, tc *ThreadCache, class uint8, la uop.Val) uint64 {
	l := &tc.lists[class]
	hDep := e.Load(l.headAddr, la)
	if l.length == 0 {
		e.Branch(siteListEmpty, true, hDep)
		return h.centralFetch(e, tc, class)
	}
	e.Branch(siteListEmpty, false, hDep)
	head := h.Space.ReadWord(l.headAddr)
	next := h.Space.ReadWord(head)
	nDep := e.Load(head, hDep)
	e.Store(l.headAddr, nDep, uop.NoDep)
	h.Space.WriteWord(l.headAddr, next)
	l.length--
	tc.size -= h.SizeMap.ClassSize(class)
	tc.Hits++
	tc.Stats.FastHits++
	return head
}

// centralFetch refills from the central list; everything below the thread
// cache is tagged StepOther so the limit study only removes fast-path work.
func (h *Heap) centralFetch(e *uop.Emitter, tc *ThreadCache, class uint8) uint64 {
	tc.gate()
	prev := e.Step(uop.StepOther)
	tc.Stats.CentralFetches++
	result := tc.fetchFromCentral(e, class)
	e.Step(prev)
	return result
}

// mallocLarge allocates size bytes directly as a span ("Large requests
// (> 256KB) go directly to spans and bypass the prior caches", Sec. 3.1).
func (h *Heap) mallocLarge(e *uop.Emitter, tc *ThreadCache, size uint64) uint64 {
	tc.gate()
	prev := e.Step(uop.StepOther)
	tc.Stats.LargeMallocs++
	pages := mem.RoundUp(size, mem.PageSize) >> mem.PageShift
	s := h.PageHeap.New(e, pages)
	e.Step(prev)
	return s.StartAddr()
}

// Free returns ptr to the allocator. size is the sized-delete hint (pass
// the allocation's requested size; 0 means unknown, forcing the page-map
// walk).
func (h *Heap) Free(tc *ThreadCache, ptr uint64, size uint64) {
	e := h.emFor(tc)
	tc.Stats.Frees++

	// Prologue.
	e.Step(uop.StepCallOverhead)
	e.Store(tc.stackAddr, uop.NoDep, uop.NoDep)
	e.ALU(uop.NoDep, uop.NoDep)
	e.Step(uop.StepOther)
	tls := e.Load(tc.tlsAddr, uop.NoDep)

	var class uint8
	var classDep uop.Val
	if h.Cfg.SizedDelete && size > 0 && size <= MaxSize {
		// Sized delete: size class recomputed from the size in software in
		// both modes (Fig. 12's free receives the class in a register; the
		// accelerator contributes only mchdpush on this side).
		e.Step(uop.StepSizeClass)
		class, _, _ = h.SizeMap.ClassFor(size)
		classDep = h.emitFreeSizeClass(e, size, class)
		e.Branch(siteFreeSmall, false, classDep)
	} else {
		// Page-map walk: the poorly-caching address->size-class lookup.
		// The page map is shared (central refills install leaves), so the
		// walk needs shared-structure admission in the parallel scheduler.
		tc.gate()
		span, walkDep := h.PageHeap.PageMap().EmitGet(e, ptr>>mem.PageShift, tls)
		if span == nil {
			panic(fmt.Sprintf("tcmalloc: free of unknown pointer %#x", ptr))
		}
		classDep = e.Load(span.MetaAddr, walkDep)
		class = span.SizeClass
		if class == 0 {
			// Large allocation: give the pages back.
			e.Branch(siteFreeSmall, true, classDep)
			tc.Stats.LargeFrees++
			prev := e.Step(uop.StepOther)
			h.PageHeap.Delete(e, span)
			e.Step(prev)
			h.emitEpilogue(e, tc)
			return
		}
		e.Branch(siteFreeSmall, false, classDep)
	}

	// Push onto the thread-local list (Fig. 7's push sequence). The real
	// list is always updated in software; with Mallacc, mchdpush
	// additionally refreshes the cached pair (Fig. 12's free).
	e.Step(uop.StepPushPop)
	la := e.ALU(classDep, tls)
	hDep := tc.pushEmit(e, class, ptr, la)
	if mc := h.mcFor(tc); mc != nil && !h.Cfg.Ablate.NoListCache {
		en := mc.HdPush(class, ptr)
		e.Mallacc(uop.McHdPush, en, en >= 0, 0, hDep, 0)
	}

	// Metadata, overflow checks, scavenging.
	e.Step(uop.StepOther)
	tc.metaUpdateEmit(e, class, la)
	l := &tc.lists[class]
	mDep := e.Load(tc.listMetaAddr(class), la)
	if l.length > l.maxLen {
		e.Branch(siteListTooLong, true, mDep)
		tc.gate()
		prev := e.Step(uop.StepOther)
		tc.listTooLong(e, class)
		e.Step(prev)
	} else {
		e.Branch(siteListTooLong, false, mDep)
	}
	if tc.size > maxThreadCacheSize {
		e.Branch(siteCacheTooBig, true, mDep)
		tc.gate()
		prev := e.Step(uop.StepOther)
		tc.scavenge(e)
		e.Step(prev)
	} else {
		e.Branch(siteCacheTooBig, false, mDep)
	}
	h.emitEpilogue(e, tc)
}

// emitEpilogue handles the return value, restores registers and returns.
func (h *Heap) emitEpilogue(e *uop.Emitter, tc *ThreadCache) {
	// Return-value move.
	e.ALU(uop.NoDep, uop.NoDep)
	e.Step(uop.StepCallOverhead)
	e.Load(tc.stackAddr, uop.NoDep)
	e.Load(tc.stackAddr+8, uop.NoDep)
	e.Load(tc.stackAddr+16, uop.NoDep)
	e.ALU(uop.NoDep, uop.NoDep)
	e.Step(uop.StepOther)
}

// CheckInvariants validates the whole allocator: thread caches, central
// lists and the page heap.
func (h *Heap) CheckInvariants() {
	for _, tc := range h.threads {
		tc.CheckInvariants()
	}
	for c := 1; c < len(h.Central); c++ {
		h.Central[c].CheckInvariants()
	}
	h.PageHeap.CheckInvariants()
}
