package tcmalloc

import (
	"testing"

	"mallacc/internal/cachesim"
	"mallacc/internal/core"
	"mallacc/internal/cpu"
	"mallacc/internal/stats"
)

func newTestHeap(mode Mode) (*Heap, *ThreadCache) {
	cfg := DefaultConfig()
	cfg.Mode = mode
	h := New(cfg)
	return h, h.NewThread()
}

// drain runs the emitter's current trace through a fresh throwaway core so
// traces don't accumulate; functional tests mostly ignore the cycles.
type driver struct {
	h    *Heap
	tc   *ThreadCache
	core *cpu.Core
}

func newDriver(t *testing.T, mode Mode) *driver {
	t.Helper()
	h, tc := newTestHeap(mode)
	return &driver{h: h, tc: tc, core: cpu.New(cpu.DefaultConfig(), cachesim.NewDefaultHierarchy())}
}

func (d *driver) malloc(size uint64) (uint64, uint64) {
	d.h.Em.Reset()
	addr := d.h.Malloc(d.tc, size)
	return addr, d.core.RunTrace(d.h.Em.Trace())
}

func (d *driver) free(addr, size uint64) uint64 {
	d.h.Em.Reset()
	d.h.Free(d.tc, addr, size)
	return d.core.RunTrace(d.h.Em.Trace())
}

func TestMallocReturnsDistinctAlignedAddresses(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		size := uint64(8 + 16*(i%30))
		a, _ := d.malloc(size)
		if a == 0 {
			t.Fatalf("malloc(%d) returned 0", size)
		}
		if a%8 != 0 {
			t.Fatalf("malloc(%d) returned unaligned %#x", size, a)
		}
		if seen[a] {
			t.Fatalf("malloc(%d) returned duplicate live address %#x", size, a)
		}
		seen[a] = true
	}
	d.h.CheckInvariants()
}

func TestMallocFreeReuse(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	a, _ := d.malloc(64)
	d.free(a, 64)
	b, _ := d.malloc(64)
	if a != b {
		t.Fatalf("LIFO thread cache should reuse the freed block: got %#x want %#x", b, a)
	}
	d.h.CheckInvariants()
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	type block struct{ addr, size uint64 }
	var live []block
	rng := stats.NewRNG(7)
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Bernoulli(0.45) {
			k := rng.Intn(len(live))
			d.free(live[k].addr, live[k].size)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(1 + rng.Intn(2000))
		a, _ := d.malloc(size)
		rounded := size
		if c, r, ok := d.h.SizeMap.ClassFor(size); ok && c > 0 {
			rounded = r
		}
		for _, b := range live {
			if a < b.addr+b.size && b.addr < a+rounded {
				t.Fatalf("overlap: new [%#x,%#x) with live [%#x,%#x)", a, a+rounded, b.addr, b.addr+b.size)
			}
		}
		live = append(live, block{a, rounded})
	}
	d.h.CheckInvariants()
}

func TestLargeAllocations(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	a, _ := d.malloc(300 << 10)
	b, _ := d.malloc(1 << 20)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("large allocations failed: %#x %#x", a, b)
	}
	if d.h.StatsSnapshot().LargeMallocs != 2 {
		t.Fatalf("expected 2 large mallocs, got %d", d.h.StatsSnapshot().LargeMallocs)
	}
	d.free(a, 300<<10)
	d.free(b, 1<<20)
	if d.h.StatsSnapshot().LargeFrees != 2 {
		t.Fatalf("expected 2 large frees, got %d", d.h.StatsSnapshot().LargeFrees)
	}
	d.h.CheckInvariants()
}

// TestModesFunctionallyIdentical is the key correctness property of the
// accelerator: Mallacc never changes which addresses the allocator hands
// out, only how fast it does so.
func TestModesFunctionallyIdentical(t *testing.T) {
	db := newDriver(t, ModeBaseline)
	dm := newDriver(t, ModeMallacc)
	rng := stats.NewRNG(42)
	type block struct{ addr, size uint64 }
	var live []block
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Bernoulli(0.48) {
			k := rng.Intn(len(live))
			db.free(live[k].addr, live[k].size)
			dm.free(live[k].addr, live[k].size)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(1 + rng.Intn(4096))
		a1, _ := db.malloc(size)
		a2, _ := dm.malloc(size)
		if a1 != a2 {
			t.Fatalf("iteration %d: baseline returned %#x, mallacc %#x for size %d", i, a1, a2, size)
		}
		live = append(live, block{a1, size})
	}
	db.h.CheckInvariants()
	dm.h.CheckInvariants()
	// Uniform sizes over 1..4096 touch ~50 size classes, well beyond the
	// 16-entry cache, so hit rates are capacity-bound (cf. Fig. 17) — we
	// only require they are nontrivial.
	if hr := dm.h.MC.Stats.PopHitRate(); hr < 0.3 {
		t.Errorf("malloc cache pop hit rate suspiciously low: %.2f", hr)
	}
	if hr := dm.h.MC.Stats.LookupHitRate(); hr < 0.5 {
		t.Errorf("size-class lookup hit rate suspiciously low: %.2f", hr)
	}
}

// TestMallocCacheHitRateWithFewClasses mirrors the paper's observation that
// workloads using <5 size classes (Fig. 6) hit almost always.
func TestMallocCacheHitRateWithFewClasses(t *testing.T) {
	d := newDriver(t, ModeMallacc)
	sizes := []uint64{16, 48, 96, 256}
	// Build list depth first: a pop hit needs both cached elements, which
	// a 1-deep list can never provide.
	var warm []uint64
	for i := 0; i < 8; i++ {
		for _, s := range sizes {
			a, _ := d.malloc(s)
			warm = append(warm, a)
		}
	}
	for i, a := range warm {
		d.free(a, sizes[i%len(sizes)])
	}
	for i := 0; i < 4000; i++ {
		s := sizes[i%len(sizes)]
		a, _ := d.malloc(s)
		d.free(a, s)
	}
	if hr := d.h.MC.Stats.LookupHitRate(); hr < 0.99 {
		t.Errorf("4-class lookup hit rate %.3f, want ~1", hr)
	}
	if hr := d.h.MC.Stats.PopHitRate(); hr < 0.9 {
		t.Errorf("4-class pop hit rate %.3f, want >0.9", hr)
	}
}

// TestFastPathCycleCalibration checks the paper's anchor numbers: a warm
// baseline thread-cache hit takes ~18-20 cycles and the Mallacc fast path
// is meaningfully faster.
func TestFastPathCycleCalibration(t *testing.T) {
	measure := func(mode Mode) float64 {
		d := newDriver(t, mode)
		d.h.Cfg.SampleInterval = 0 // isolate the pure fast path
		// Warm up: build list depth and warm predictors/caches.
		var addrs []uint64
		for i := 0; i < 64; i++ {
			a, _ := d.malloc(64)
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			d.free(a, 64)
		}
		var total uint64
		const n = 2000
		for i := 0; i < n; i++ {
			a, cyc := d.malloc(64)
			total += cyc
			d.free(a, 64)
		}
		return float64(total) / n
	}
	base := measure(ModeBaseline)
	fast := measure(ModeMallacc)
	t.Logf("baseline fast path: %.1f cycles, mallacc: %.1f cycles", base, fast)
	if base < 12 || base > 30 {
		t.Errorf("baseline fast path %.1f cycles outside the paper's 18-20 +/- tolerance band", base)
	}
	if fast >= base {
		t.Errorf("Mallacc fast path (%.1f) not faster than baseline (%.1f)", fast, base)
	}
	if fast > 0.85*base {
		t.Errorf("Mallacc speedup too small: %.1f vs %.1f", fast, base)
	}
}

func TestSizeMapProperties(t *testing.T) {
	h, _ := newTestHeap(ModeBaseline)
	sm := h.SizeMap
	n := sm.NumClasses()
	if n < 60 || n > MaxNumClasses {
		t.Fatalf("unexpected class count %d", n)
	}
	t.Logf("generated %d size classes", n-1)
	prev := uint64(0)
	for c := 1; c < n; c++ {
		s := sm.ClassSize(uint8(c))
		if s <= prev {
			t.Fatalf("class sizes not strictly increasing at class %d: %d <= %d", c, s, prev)
		}
		prev = s
	}
	if prev != MaxSize {
		t.Fatalf("largest class %d != MaxSize %d", prev, MaxSize)
	}
	// Rounding is sound and fragmentation bounded for every size.
	for size := uint64(1); size <= MaxSize; size += 7 {
		c, rounded, ok := sm.ClassFor(size)
		if !ok || c == 0 {
			t.Fatalf("no class for size %d", size)
		}
		if rounded < size {
			t.Fatalf("class %d rounds size %d down to %d", c, size, rounded)
		}
	}
}

func TestClassIndexMatchesPaperFigure5(t *testing.T) {
	// Exact values from the paper's Figure 5 formulas.
	cases := []struct{ size, want uint64 }{
		{1, 1},
		{8, 1},
		{9, 2},
		{16, 2},
		{1024, 128},                       // (1024+7)>>3
		{1025, (1025 + 15487) >> 7},       // first large-branch size
		{MaxSize, (MaxSize + 15487) >> 7}, // 262144 -> 2168
	}
	for _, c := range cases {
		if got := ClassIndex(c.size); got != c.want {
			t.Errorf("ClassIndex(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if ClassIndex(MaxSize) != 2168 {
		t.Errorf("ClassIndex(MaxSize) = %d, want 2168 (the paper's 'slightly above 2100')", ClassIndex(MaxSize))
	}
	if ClassArraySize != 2169 {
		t.Errorf("ClassArraySize = %d, want 2169", ClassArraySize)
	}
}

func TestSampling(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	d.h.Cfg.SampleInterval = 4096
	// Re-create thread so its sampler picks up the interval.
	d.tc = d.h.NewThread()
	for i := 0; i < 4000; i++ {
		a, _ := d.malloc(128)
		d.free(a, 128)
	}
	if d.h.StatsSnapshot().Sampled == 0 {
		t.Fatal("no sampled allocations with a 4 KiB interval over 512 KiB allocated")
	}
}

func TestHardwareSamplingCounterFires(t *testing.T) {
	var c core.SampleCounter
	c.Arm(1000)
	fired := 0
	for i := 0; i < 100; i++ {
		if c.Add(64) {
			fired++
			c.Arm(1000)
		}
	}
	if fired < 5 || fired > 7 {
		t.Fatalf("expected ~6 interrupts (6400/1000), got %d", fired)
	}
}

func TestCrossThreadFree(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	t2 := d.h.NewThread()
	// Thread 1 allocates, thread 2 frees: memory must migrate through the
	// central lists without corruption.
	var addrs []uint64
	for i := 0; i < 2000; i++ {
		a, _ := d.malloc(96)
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		d.h.Em.Reset()
		d.h.Free(t2, a, 96)
		d.core.RunTrace(d.h.Em.Trace())
	}
	d.h.CheckInvariants()
	// Thread 2's cache should have shed batches centrally.
	if t2.ListTooLongs == 0 {
		t.Error("expected list-too-long releases on the freeing thread")
	}
	// And thread 1 can re-get the memory.
	a, _ := d.malloc(96)
	if a == 0 {
		t.Fatal("re-allocation after migration failed")
	}
}

func TestPageHeapCoalescing(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	// Allocate three adjacent large blocks, free them, and check the heap
	// coalesces: a following bigger allocation should fit in place.
	a, _ := d.malloc(512 << 10)
	b, _ := d.malloc(512 << 10)
	c, _ := d.malloc(512 << 10)
	if b != a+(512<<10) || c != b+(512<<10) {
		t.Skipf("blocks not adjacent (%#x %#x %#x); layout changed", a, b, c)
	}
	d.free(a, 512<<10)
	d.free(b, 512<<10)
	d.free(c, 512<<10)
	grown := d.h.Space.Brk()
	big, _ := d.malloc(1536 << 10)
	if big != a {
		t.Errorf("coalesced reuse expected at %#x, got %#x", a, big)
	}
	if d.h.Space.Brk() != grown {
		t.Errorf("heap grew despite coalesced free space")
	}
	d.h.CheckInvariants()
}

func TestMallocCacheInvalidatedOnRelease(t *testing.T) {
	d := newDriver(t, ModeMallacc)
	// Free enough objects of one class to trigger a release to central;
	// subsequent pops must stay consistent (the heap panics on any cached/
	// real mismatch, so surviving is the assertion).
	var addrs []uint64
	for i := 0; i < 5000; i++ {
		a, _ := d.malloc(48)
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		d.free(a, 48)
	}
	for i := 0; i < 5000; i++ {
		d.malloc(48)
	}
	d.h.CheckInvariants()
}

func TestCallocZeroesAndAllocates(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	d.h.Em.Reset()
	a := d.h.Calloc(d.tc, 128)
	cyc := d.core.RunTrace(d.h.Em.Trace())
	if a == 0 || cyc == 0 {
		t.Fatal("calloc failed")
	}
	if d.h.Space.ReadWord(a) != 0 {
		t.Fatal("calloc left a dirty word")
	}
	d.h.CheckInvariants()
}

func TestReallocSemantics(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	do := func(f func() uint64) uint64 {
		d.h.Em.Reset()
		r := f()
		d.core.RunTrace(d.h.Em.Trace())
		return r
	}
	// nil -> malloc
	a := do(func() uint64 { return d.h.Realloc(d.tc, 0, 0, 100) })
	if a == 0 {
		t.Fatal("realloc(nil) failed")
	}
	// Same class: in place.
	b := do(func() uint64 { return d.h.Realloc(d.tc, a, 100, 110) })
	if b != a {
		t.Fatalf("same-class realloc moved: %#x -> %#x", a, b)
	}
	// Grow across classes: moves.
	c := do(func() uint64 { return d.h.Realloc(d.tc, b, 110, 4000) })
	if c == b {
		t.Fatal("cross-class realloc did not move")
	}
	// Moderate shrink: stays.
	e := do(func() uint64 { return d.h.Realloc(d.tc, c, 4000, 2500) })
	if e != c {
		t.Fatal("moderate shrink moved")
	}
	// Deep shrink: moves.
	f := do(func() uint64 { return d.h.Realloc(d.tc, e, 4000, 64) })
	if f == e {
		t.Fatal("deep shrink did not move")
	}
	// Size 0: free.
	if g := do(func() uint64 { return d.h.Realloc(d.tc, f, 64, 0) }); g != 0 {
		t.Fatal("realloc to 0 did not free")
	}
	d.h.CheckInvariants()
}

func TestMultiThreadedChurn(t *testing.T) {
	d := newDriver(t, ModeMallacc)
	t2 := d.h.NewThread()
	t3 := d.h.NewThread()
	threads := []*ThreadCache{d.tc, t2, t3}
	rng := stats.NewRNG(77)
	type blk struct{ a, s uint64 }
	var live []blk
	cur := 0
	for i := 0; i < 6000; i++ {
		// A single core runs one thread at a time: switching the active
		// thread cache is a context switch, which flushes the malloc
		// cache (Sec. 4.1). Interleaving threads per call without the
		// flush would hand thread B thread A's cached list heads — the
		// allocator's sync panic guards exactly that contract.
		if i%500 == 499 {
			cur = rng.Intn(len(threads))
			d.h.FlushMallocCache()
			d.core.ContextSwitch()
		}
		tc := threads[cur]
		if len(live) > 0 && rng.Bernoulli(0.5) {
			k := rng.Intn(len(live))
			d.h.Em.Reset()
			d.h.Free(tc, live[k].a, live[k].s)
			d.core.RunTrace(d.h.Em.Trace())
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(1 + rng.Intn(1024))
		d.h.Em.Reset()
		a := d.h.Malloc(tc, size)
		d.core.RunTrace(d.h.Em.Trace())
		live = append(live, blk{a, size})
	}
	d.h.CheckInvariants()
}
