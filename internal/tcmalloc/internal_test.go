package tcmalloc

import (
	"testing"
	"testing/quick"

	"mallacc/internal/mem"
	"mallacc/internal/stats"
	"mallacc/internal/uop"
)

// newBareHeap builds a heap and a scratch emitter for direct substrate
// tests (no CPU timing).
func newBareHeap() (*Heap, *uop.Emitter) {
	h := New(DefaultConfig())
	e := uop.NewEmitter()
	e.Reset()
	return h, e
}

func TestPageMapSetGet(t *testing.T) {
	space := mem.NewDefaultSpace()
	arena := mem.NewArena(space, 1<<20)
	pm := NewPageMap(arena)
	if pm.Get(123) != nil {
		t.Fatal("empty pagemap returned a span")
	}
	s1 := &Span{Start: 100, Length: 3}
	s2 := &Span{Start: 1 << 20, Length: 1} // far page: different radix subtree
	pm.Set(100, s1)
	pm.Set(1<<20, s2)
	if pm.Get(100) != s1 || pm.Get(1<<20) != s2 {
		t.Fatal("pagemap lookup mismatch")
	}
	if pm.Get(101) != nil {
		t.Fatal("unset page returned a span")
	}
	// Overwrite.
	pm.Set(100, s2)
	if pm.Get(100) != s2 {
		t.Fatal("pagemap overwrite failed")
	}
	if pm.Nodes < 3 {
		t.Fatalf("expected interior node allocations, got %d", pm.Nodes)
	}
}

func TestPageMapEmitGetEmitsRadixWalk(t *testing.T) {
	space := mem.NewDefaultSpace()
	arena := mem.NewArena(space, 1<<20)
	pm := NewPageMap(arena)
	s := &Span{Start: 55, Length: 1}
	pm.Set(55, s)
	e := uop.NewEmitter()
	e.Reset()
	got, dep := pm.EmitGet(e, 55, uop.NoDep)
	if got != s {
		t.Fatal("EmitGet wrong span")
	}
	tr := e.Trace()
	loads := 0
	for _, op := range tr.Ops {
		if op.Kind == uop.Load {
			loads++
		}
	}
	if loads != 3 {
		t.Fatalf("radix walk emitted %d loads, want 3", loads)
	}
	// The walk must be serially dependent (the 'caches poorly' property).
	if tr.Ops[dep].Dep1 == uop.NoDep {
		t.Fatal("final radix load has no dependence")
	}
}

func TestPageMapPropertyRandomPages(t *testing.T) {
	space := mem.NewDefaultSpace()
	arena := mem.NewArena(space, 16<<20)
	pm := NewPageMap(arena)
	ref := map[uint64]*Span{}
	f := func(pages []uint32) bool {
		for _, p := range pages {
			pid := uint64(p) // 32-bit page ids keep node count bounded
			s := &Span{Start: pid, Length: 1}
			pm.Set(pid, s)
			ref[pid] = s
		}
		for pid, want := range ref {
			if pm.Get(pid) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageHeapSplitAndExactReuse(t *testing.T) {
	h, e := newBareHeap()
	ph := h.PageHeap
	s := ph.New(e, 5)
	if s.Length != 5 {
		t.Fatalf("got %d pages", s.Length)
	}
	// The grow allocated minSystemAlloc pages; remainder must be on the
	// free lists.
	if ph.FreePages != minSystemAlloc-5 {
		t.Fatalf("free pages %d, want %d", ph.FreePages, minSystemAlloc-5)
	}
	// Freeing and reallocating the same size reuses the coalesced space
	// without growing.
	grows := ph.GrowCalls
	ph.Delete(e, s)
	if ph.FreePages != minSystemAlloc {
		t.Fatalf("coalesce failed: %d free pages", ph.FreePages)
	}
	s2 := ph.New(e, minSystemAlloc)
	if ph.GrowCalls != grows {
		t.Fatal("reallocation grew the heap despite coalesced space")
	}
	if s2.Length != minSystemAlloc {
		t.Fatalf("full-span realloc got %d pages", s2.Length)
	}
	ph.CheckInvariants()
}

func TestPageHeapLargeList(t *testing.T) {
	h, e := newBareHeap()
	ph := h.PageHeap
	big := ph.New(e, MaxPages+10)
	if big.Length != MaxPages+10 {
		t.Fatalf("large span %d pages", big.Length)
	}
	ph.Delete(e, big)
	// Best-fit from the large list.
	again := ph.New(e, MaxPages+1)
	if again.Start != big.Start {
		t.Fatalf("large reuse at %d, want %d", again.Start, big.Start)
	}
	ph.CheckInvariants()
}

func TestPageHeapCoalesceBothSides(t *testing.T) {
	h, e := newBareHeap()
	ph := h.PageHeap
	a := ph.New(e, 4)
	b := ph.New(e, 4)
	c := ph.New(e, 4)
	if b.Start != a.Start+4 || c.Start != b.Start+4 {
		t.Skip("spans not adjacent; carving order changed")
	}
	ph.Delete(e, a)
	ph.Delete(e, c)
	free := ph.FreePages
	ph.Delete(e, b) // must merge with both neighbours
	if ph.FreePages != free+4 {
		t.Fatalf("free pages %d", ph.FreePages)
	}
	// The merged span must be allocatable as one piece.
	s := ph.New(e, 12)
	if s.Start != a.Start {
		t.Fatalf("merged allocation at %d, want %d", s.Start, a.Start)
	}
	ph.CheckInvariants()
}

func TestCentralFreeListTransferCache(t *testing.T) {
	h, e := newBareHeap()
	cl := uint8(3)
	c := h.Central[cl]
	batch := h.SizeMap.NumToMove(cl)
	// Get a full batch out and put it back: the round trip must use the
	// transfer cache.
	head, got := c.RemoveRange(e, batch)
	if got != batch || head == 0 {
		t.Fatalf("RemoveRange got %d", got)
	}
	misses := c.TransferMisses
	c.InsertRange(e, head, batch)
	head2, got2 := c.RemoveRange(e, batch)
	if got2 != batch {
		t.Fatalf("second RemoveRange got %d", got2)
	}
	if c.TransferHits == 0 {
		t.Fatal("full-batch round trip bypassed the transfer cache")
	}
	if c.TransferMisses != misses {
		t.Fatal("unexpected transfer miss")
	}
	if head2 != head {
		t.Fatalf("transfer cache returned a different chain: %#x vs %#x", head2, head)
	}
	c.InsertRange(e, head2, batch)
	c.CheckInvariants()
	h.PageHeap.CheckInvariants()
}

func TestCentralReleasesEmptySpans(t *testing.T) {
	h, e := newBareHeap()
	cl := uint8(2) // 32-byte objects
	c := h.Central[cl]
	// Drain several spans worth of objects, then insert everything back
	// one object at a time (avoiding the transfer cache) so spans empty
	// out and return to the page heap.
	var objs []uint64
	for i := 0; i < 600; i++ {
		head, got := c.RemoveRange(e, 1)
		if got != 1 {
			t.Fatal("RemoveRange(1) failed")
		}
		objs = append(objs, head)
	}
	spansBefore := h.PageHeap.SpansFreed
	for _, o := range objs {
		h.Space.WriteWord(o, 0)
		c.InsertRange(e, o, 1)
	}
	if h.PageHeap.SpansFreed == spansBefore {
		t.Fatal("no spans returned to the page heap")
	}
	c.CheckInvariants()
	h.PageHeap.CheckInvariants()
}

func TestSizeMapFragmentationBound(t *testing.T) {
	h, _ := newBareHeap()
	sm := h.SizeMap
	// The generator's rule: span leftover after slicing into objects is
	// at most 1/8 of the span.
	for c := 1; c < sm.NumClasses(); c++ {
		size := sm.ClassSize(uint8(c))
		span := sm.ClassPages(uint8(c)) << mem.PageShift
		waste := span % size
		if waste > span/8 {
			t.Errorf("class %d (%dB, %dB span): leftover %d > span/8", c, size, span, waste)
		}
		if sm.NumToMove(uint8(c)) < 2 || sm.NumToMove(uint8(c)) > 32 {
			t.Errorf("class %d batch %d out of [2,32]", c, sm.NumToMove(uint8(c)))
		}
	}
}

func TestSizeMapClassForMatchesClassIndexTable(t *testing.T) {
	h, _ := newBareHeap()
	sm := h.SizeMap
	// Property: ClassFor is monotone in its class and exact at class
	// boundaries.
	f := func(raw uint32) bool {
		size := uint64(raw)%MaxSize + 1
		c, rounded, ok := sm.ClassFor(size)
		if !ok || c == 0 {
			return false
		}
		if rounded != sm.ClassSize(c) || rounded < size {
			return false
		}
		// The exact rounded size maps to the same class.
		c2, _, _ := sm.ClassFor(rounded)
		return c2 == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// refAlloc is a trivially correct reference allocator: it tracks live
// ranges in a map and checks non-overlap. The fuzzer drives the real heap
// and the reference together.
func TestHeapFuzzAgainstReference(t *testing.T) {
	f := func(seed uint64) bool {
		d := driver{h: New(DefaultConfig())}
		d.tc = d.h.NewThread()
		e := d.h.Em
		rng := stats.NewRNG(seed)
		type blk struct{ addr, size, rounded uint64 }
		var live []blk
		for i := 0; i < 800; i++ {
			e.Reset()
			if len(live) > 0 && rng.Bernoulli(0.45) {
				k := rng.Intn(len(live))
				hint := live[k].size
				if rng.Bernoulli(0.3) {
					hint = 0 // unsized delete: radix path
				}
				d.h.Free(d.tc, live[k].addr, hint)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			size := uint64(1 + rng.Intn(12000))
			if rng.Bernoulli(0.02) {
				size = uint64(256<<10) + rng.Uint64n(1<<20) // large path
			}
			addr := d.h.Malloc(d.tc, size)
			rounded := size
			if c, r, ok := d.h.SizeMap.ClassFor(size); ok && c > 0 {
				rounded = r
			} else {
				rounded = mem.RoundUp(size, mem.PageSize)
			}
			for _, b := range live {
				if addr < b.addr+b.rounded && b.addr < addr+rounded {
					return false
				}
			}
			live = append(live, blk{addr, size, rounded})
		}
		d.h.CheckInvariants()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScavengeTriggersOnCacheBudget(t *testing.T) {
	d := newDriver(t, ModeBaseline)
	// Hold many large-class objects so the cache exceeds 2 MiB on free.
	var addrs []uint64
	for i := 0; i < 40; i++ {
		a, _ := d.malloc(128 << 10)
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		d.free(a, 128<<10)
	}
	if d.tc.Scavenges == 0 {
		t.Fatal("2 MiB thread-cache budget never triggered a scavenge")
	}
	d.h.CheckInvariants()
}

func TestEmitterStepRestoredAcrossSlowPath(t *testing.T) {
	// A central fetch inside popStep must not leave the emitter in
	// StepOther for subsequent fast-path tagging.
	h, _ := newBareHeap()
	tc := h.NewThread()
	h.Em.Reset()
	h.Malloc(tc, 64) // cold: goes through the central path
	tr := h.Em.Trace()
	counts := tr.CountByStep()
	if counts[uop.StepCallOverhead] == 0 {
		t.Fatal("epilogue lost its call-overhead tag after a slow path")
	}
}
