package tcmalloc

// LockSite identifies one of the allocator's shared locks. The single-core
// simulation emits each lock as an uncontended atomic RMW (load + 17-cycle
// ALU) and each unlock as a plain store; under a multi-core engine the same
// sites additionally consult a LockModel so contention can be charged.
type LockSite uint8

const (
	// LockCentral guards a per-size-class central free list (transfer
	// cache + span lists).
	LockCentral LockSite = iota
	// LockPageHeap guards the page heap (span free lists, page map
	// updates, OS growth).
	LockPageHeap
)

func (s LockSite) String() string {
	switch s {
	case LockCentral:
		return "central"
	case LockPageHeap:
		return "pageheap"
	}
	return "unknown"
}

// LockModel is the contention hook a concurrent engine installs via
// Heap.SetLockModel. The allocator calls Acquire when the executing core
// takes the lock at site (class is the size class for central locks, 0 for
// the page heap) and charges the returned extra wait cycles into the call
// trace; Release reports the number of micro-ops emitted while the lock was
// held, the engine's proxy for hold time. A nil model (the default) keeps
// every lock uncontended, preserving single-core behaviour exactly.
type LockModel interface {
	Acquire(site LockSite, class uint8) (waitCycles uint64)
	Release(site LockSite, class uint8, holdUops int)
}

// SetLockModel installs lm on the heap and its page heap (nil uninstalls).
func (h *Heap) SetLockModel(lm LockModel) {
	h.Lock = lm
	h.PageHeap.Lock = lm
}
