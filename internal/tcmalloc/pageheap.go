package tcmalloc

import (
	"fmt"

	"mallacc/internal/mem"
	"mallacc/internal/uop"
)

// MaxPages is the largest span length with a dedicated free list; longer
// spans go to the large list (gperftools kMaxPages = 128 at 8 KiB pages =
// 1 MiB).
const MaxPages = 128

// minSystemAlloc is the smallest unit requested from the simulated OS, in
// pages (gperftools kMinSystemAlloc: grow by at least 1 MiB at a time).
const minSystemAlloc = MaxPages

// PageHeap manages spans of pages: free lists per exact length 1..MaxPages,
// a large list, span splitting and address-ordered coalescing through the
// page map, and growth via simulated OS requests. It sits below the central
// free lists ("Should both of these sources be empty themselves, TCMalloc
// allocates a span ... from a page allocator", Sec. 3.1).
type PageHeap struct {
	space    *mem.Space
	arena    *mem.Arena
	pm       *PageMap
	free     [MaxPages + 1]spanList // index = span length in pages
	large    spanList
	lockAddr uint64

	// Lock is the contention hook (nil when single-core); installed by
	// Heap.SetLockModel. lockHeldAt mirrors CentralFreeList's hold tracking.
	Lock       LockModel
	lockHeldAt int

	// Stats
	SpansAllocated uint64
	SpansFreed     uint64
	SpansSplit     uint64
	GrowCalls      uint64
	FreePages      uint64
}

// NewPageHeap builds an empty page heap over space, with metadata in arena.
func NewPageHeap(space *mem.Space, arena *mem.Arena, pm *PageMap) *PageHeap {
	return &PageHeap{space: space, arena: arena, pm: pm, lockAddr: arena.Alloc(64, 64)}
}

// PageMap exposes the radix tree (free() walks it).
func (ph *PageHeap) PageMap() *PageMap { return ph.pm }

// Reset returns the page heap (and its radix tree) to the just-built empty
// state: no free spans, no statistics. Span metadata is dropped with the
// lists; a pooled run re-allocates spans through the rewound arena at the
// same simulated addresses a fresh run would use.
func (ph *PageHeap) Reset() {
	for i := range ph.free {
		ph.free[i] = spanList{}
	}
	ph.large = spanList{}
	ph.lockHeldAt = 0
	ph.SpansAllocated, ph.SpansFreed, ph.SpansSplit = 0, 0, 0
	ph.GrowCalls, ph.FreePages = 0, 0
	ph.pm.Reset()
}

// LockAddr returns the simulated address of the page-heap lock word.
func (ph *PageHeap) LockAddr() uint64 { return ph.lockAddr }

// newSpanMeta allocates a span struct with a simulated metadata address.
func (ph *PageHeap) newSpanMeta(start, length uint64) *Span {
	return &Span{Start: start, Length: length, MetaAddr: ph.arena.Alloc(48, 8)}
}

// New allocates a span of exactly n pages, emitting the page-heap slow-path
// micro-ops. It never returns nil (the simulated OS never refuses).
func (ph *PageHeap) New(e *uop.Emitter, n uint64) *Span {
	if n == 0 {
		panic("tcmalloc: zero-page span requested")
	}
	ph.lock(e)
	s := ph.searchFreeAndCarve(e, n)
	if s == nil {
		ph.grow(e, n)
		s = ph.searchFreeAndCarve(e, n)
		if s == nil {
			panic("tcmalloc: page heap failed to grow")
		}
	}
	ph.unlock(e)
	ph.SpansAllocated++
	return s
}

// lock takes the page-heap lock: an uncontended atomic RMW on the lock word,
// plus whatever extra wait the installed LockModel charges under contention.
func (ph *PageHeap) lock(e *uop.Emitter) uop.Val {
	lk := e.Load(ph.lockAddr, uop.NoDep)
	v := e.ALUWithLat(17, lk, uop.NoDep)
	if ph.Lock != nil {
		if wait := ph.Lock.Acquire(LockPageHeap, 0); wait > 0 {
			v = e.Stall(wait, v)
		}
		ph.lockHeldAt = e.Len()
	}
	return v
}

// unlock releases the page-heap lock: a plain store.
func (ph *PageHeap) unlock(e *uop.Emitter) {
	if ph.Lock != nil {
		ph.Lock.Release(LockPageHeap, 0, e.Len()-ph.lockHeldAt)
	}
	e.Store(ph.lockAddr, uop.NoDep, uop.NoDep)
}

// searchFreeAndCarve scans the free lists for the first span of length >= n
// (first fit over exact lists, then best fit over the large list), splits
// off the remainder, and marks the result in use.
func (ph *PageHeap) searchFreeAndCarve(e *uop.Emitter, n uint64) *Span {
	// Walk the exact lists n..MaxPages: each probe is a load of the list
	// head plus a branch, the classic first-fit scan.
	for ln := n; ln <= MaxPages; ln++ {
		headDep := e.Load(ph.listHeadAddr(ln), uop.NoDep)
		if !ph.free[ln].empty() {
			e.Branch(siteHeapListHit, true, headDep)
			s := ph.free[ln].popFront()
			ph.FreePages -= s.Length
			return ph.carve(e, s, n)
		}
		e.Branch(siteHeapListHit, false, headDep)
	}
	// Best fit over the large list.
	var best *Span
	probe := e.Load(ph.listHeadAddr(0), uop.NoDep)
	for s := ph.large.head; s != nil; s = s.next {
		probe = e.Load(s.MetaAddr, probe)
		e.Branch(siteHeapLargeFit, s.Length >= n, probe)
		if s.Length >= n && (best == nil || s.Length < best.Length ||
			(s.Length == best.Length && s.Start < best.Start)) {
			best = s
		}
	}
	if best == nil {
		return nil
	}
	ph.large.remove(best)
	ph.FreePages -= best.Length
	return ph.carve(e, best, n)
}

// carve splits span s (already off its free list) into an n-page in-use
// span, returning the remainder to the free lists.
func (ph *PageHeap) carve(e *uop.Emitter, s *Span, n uint64) *Span {
	if s.Length < n {
		panic("tcmalloc: carve of short span")
	}
	if extra := s.Length - n; extra > 0 {
		rest := ph.newSpanMeta(s.Start+n, extra)
		rest.Location = SpanOnFreeList
		s.Length = n
		ph.recordSpan(e, rest)
		ph.insertFree(e, rest)
		ph.SpansSplit++
	}
	s.Location = SpanInUse
	s.SizeClass = 0
	s.Refcount = 0
	s.FreeHead = 0
	s.FreeCount = 0
	ph.recordSpan(e, s)
	return s
}

// recordSpan registers every page of s in the page map (functionally) and
// emits the boundary-page stores plus one store per interior page, the
// dominant cost of span bookkeeping.
func (ph *PageHeap) recordSpan(e *uop.Emitter, s *Span) {
	dep := e.ALU(uop.NoDep, uop.NoDep)
	for p := uint64(0); p < s.Length; p++ {
		ph.pm.EmitSet(e, s.Start+p, s, dep)
	}
	e.Store(s.MetaAddr, uop.NoDep, dep)
}

// insertFree puts s on the appropriate free list.
func (ph *PageHeap) insertFree(e *uop.Emitter, s *Span) {
	s.Location = SpanOnFreeList
	ph.FreePages += s.Length
	idx := s.Length
	if idx > MaxPages {
		idx = 0 // large list
	}
	e.Store(ph.listHeadAddr(idx), uop.NoDep, uop.NoDep)
	if s.Length <= MaxPages {
		ph.free[s.Length].pushFront(s)
	} else {
		ph.large.pushFront(s)
	}
}

// Delete returns span s to the heap, coalescing with free neighbours found
// through the page map (the buddy-less, address-ordered merge TCMalloc
// uses).
func (ph *PageHeap) Delete(e *uop.Emitter, s *Span) {
	lk := ph.lock(e)

	// Coalesce with the span ending just before us.
	if prev, dep := ph.pm.EmitGet(e, s.Start-1, lk); prev != nil && prev.Location == SpanOnFreeList {
		e.Branch(siteHeapCoalesce, true, dep)
		ph.removeFree(prev)
		prev.Length += s.Length
		s = prev
		ph.recordBoundary(e, s)
	} else {
		e.Branch(siteHeapCoalesce, false, dep)
	}
	// Coalesce with the span starting just after us.
	if next, dep := ph.pm.EmitGet(e, s.Start+s.Length, lk); next != nil && next.Location == SpanOnFreeList {
		e.Branch(siteHeapCoalesce, true, dep)
		ph.removeFree(next)
		s.Length += next.Length
		ph.recordBoundary(e, s)
	} else {
		e.Branch(siteHeapCoalesce, false, dep)
	}
	s.SizeClass = 0
	s.FreeHead = 0
	s.FreeCount = 0
	// Re-register boundaries (interior pages keep pointing at s or are
	// unreachable until re-carved).
	ph.pm.Set(s.Start, s)
	ph.pm.Set(s.Start+s.Length-1, s)
	ph.insertFree(e, s)
	ph.SpansFreed++
	ph.unlock(e)
}

func (ph *PageHeap) recordBoundary(e *uop.Emitter, s *Span) {
	ph.pm.Set(s.Start, s)
	ph.pm.Set(s.Start+s.Length-1, s)
	e.Store(s.MetaAddr, uop.NoDep, uop.NoDep)
}

func (ph *PageHeap) removeFree(s *Span) {
	ph.FreePages -= s.Length
	if s.Length <= MaxPages {
		ph.free[s.Length].remove(s)
	} else {
		ph.large.remove(s)
	}
}

// grow requests memory from the simulated OS: at least minSystemAlloc
// pages, charged as an expensive system call.
func (ph *PageHeap) grow(e *uop.Emitter, n uint64) {
	ask := n
	if ask < minSystemAlloc {
		ask = minSystemAlloc
	}
	addr := ph.space.Sbrk(ask << mem.PageShift)
	ph.GrowCalls++
	// Syscall cost: a serial chain of long-latency ops (~2500 cycles of
	// kernel entry, VMA bookkeeping and return).
	v := uop.NoDep
	for i := 0; i < 10; i++ {
		v = e.ALUWithLat(250, v, uop.NoDep)
	}
	s := ph.newSpanMeta(addr>>mem.PageShift, ask)
	ph.recordSpan(e, s)
	ph.insertFree(e, s)
}

// listHeadAddr gives a stable simulated address for a free-list head (index
// 0 = large list) so heap-walk loads have realistic locality.
func (ph *PageHeap) listHeadAddr(ln uint64) uint64 {
	return ph.lockAddr + 64 + ln*16
}

// CheckInvariants panics if free-list bookkeeping is inconsistent; tests
// call it after workloads.
func (ph *PageHeap) CheckInvariants() {
	var pages uint64
	for ln := 1; ln <= MaxPages; ln++ {
		for s := ph.free[ln].head; s != nil; s = s.next {
			if s.Length != uint64(ln) {
				panic(fmt.Sprintf("tcmalloc: span of length %d on list %d", s.Length, ln))
			}
			if s.Location != SpanOnFreeList {
				panic("tcmalloc: in-use span on free list")
			}
			pages += s.Length
		}
	}
	for s := ph.large.head; s != nil; s = s.next {
		if s.Length <= MaxPages {
			panic("tcmalloc: small span on large list")
		}
		pages += s.Length
	}
	if pages != ph.FreePages {
		panic(fmt.Sprintf("tcmalloc: free page accounting: counted %d, recorded %d", pages, ph.FreePages))
	}
}
