package tcmalloc

import (
	"mallacc/internal/mem"
	"mallacc/internal/uop"
)

// PageMap is the three-level radix tree mapping page IDs to spans, like
// TCMalloc's PageMap3 on 64-bit systems. It is what free() walks when no
// sized delete is available ("a hash lookup from the address being freed to
// the size class. This hash tends to cache poorly, especially in the TLB",
// Sec. 3.3): the walk is three dependent loads at node addresses spread
// across the metadata arena, plus a load of the span header.
const (
	pageIDBits = mem.AddressBits - mem.PageShift // 35
	rootBits   = 12
	midBits    = 11
	leafBits   = pageIDBits - rootBits - midBits // 12
	rootFanout = 1 << rootBits
	midFanout  = 1 << midBits
	leafFanout = 1 << leafBits
	midShift   = leafBits
	rootShift  = leafBits + midBits
	pageIDMask = (uint64(1) << pageIDBits) - 1
	slotBytes  = 8
)

type pmLeaf struct {
	addr  uint64
	spans [leafFanout]*Span
}

type pmMid struct {
	addr   uint64
	leaves [midFanout]*pmLeaf
}

// PageMap is the radix tree plus the metadata arena its nodes are placed
// in.
type PageMap struct {
	arena    *mem.Arena
	rootAddr uint64
	root     [rootFanout]*pmMid
	// Nodes counts interior/leaf node allocations, for tests and the
	// design-doc metadata accounting.
	Nodes int
}

// NewPageMap builds an empty radix tree with its root in the arena.
func NewPageMap(arena *mem.Arena) *PageMap {
	return &PageMap{arena: arena, rootAddr: arena.Alloc(rootFanout*slotBytes, 64)}
}

// Reset empties the tree back to its just-built state. Interior nodes are
// dropped rather than kept: their metadata addresses came from the arena,
// and a pooled run — whose arena has been rewound to the post-construction
// mark — must replay the exact same allocation sequence a fresh run would,
// so the nodes are re-carved lazily at identical addresses.
func (pm *PageMap) Reset() {
	clear(pm.root[:])
	pm.Nodes = 0
}

func (pm *PageMap) indices(pageID uint64) (r, m, l uint64) {
	pageID &= pageIDMask
	return pageID >> rootShift, (pageID >> midShift) & (midFanout - 1), pageID & (leafFanout - 1)
}

// Set maps pageID to span, allocating interior nodes as needed.
func (pm *PageMap) Set(pageID uint64, s *Span) {
	r, m, l := pm.indices(pageID)
	midNode := pm.root[r]
	if midNode == nil {
		midNode = &pmMid{addr: pm.arena.Alloc(midFanout*slotBytes, 64)}
		pm.root[r] = midNode
		pm.Nodes++
	}
	leaf := midNode.leaves[m]
	if leaf == nil {
		leaf = &pmLeaf{addr: pm.arena.Alloc(leafFanout*slotBytes, 64)}
		midNode.leaves[m] = leaf
		pm.Nodes++
	}
	leaf.spans[l] = s
}

// Get returns the span mapped at pageID, or nil.
func (pm *PageMap) Get(pageID uint64) *Span {
	r, m, l := pm.indices(pageID)
	midNode := pm.root[r]
	if midNode == nil {
		return nil
	}
	leaf := midNode.leaves[m]
	if leaf == nil {
		return nil
	}
	return leaf.spans[l]
}

// EmitGet performs Get while emitting the three dependent radix loads, as
// the hardware would execute them. It returns the span and the uop handle
// of the final load (whose result later ops depend on).
func (pm *PageMap) EmitGet(e *uop.Emitter, pageID uint64, addrDep uop.Val) (*Span, uop.Val) {
	r, m, l := pm.indices(pageID)
	idx := e.ALU(addrDep, uop.NoDep) // shift/mask to root index
	v1 := e.Load(pm.rootAddr+r*slotBytes, idx)
	midNode := pm.root[r]
	if midNode == nil {
		return nil, v1
	}
	v2 := e.Load(midNode.addr+m*slotBytes, v1)
	leaf := midNode.leaves[m]
	if leaf == nil {
		return nil, v2
	}
	v3 := e.Load(leaf.addr+l*slotBytes, v2)
	return leaf.spans[l], v3
}

// EmitSet performs Set while emitting one store to the leaf slot (interior
// node loads are emitted as the dependent walk).
func (pm *PageMap) EmitSet(e *uop.Emitter, pageID uint64, s *Span, addrDep uop.Val) {
	r, m, l := pm.indices(pageID)
	preNodes := pm.Nodes
	pm.Set(pageID, s)
	if pm.Nodes != preNodes {
		// Node allocation: metadata arena work, a handful of ops.
		e.ALUChain(4, addrDep)
	}
	midNode := pm.root[r]
	v1 := e.Load(pm.rootAddr+r*slotBytes, addrDep)
	v2 := e.Load(midNode.addr+m*slotBytes, v1)
	e.Store(midNode.leaves[m].addr+l*slotBytes, v2, uop.NoDep)
}
