package tcmalloc

import (
	"mallacc/internal/mem"
	"mallacc/internal/uop"
)

// Calloc allocates size bytes zeroed: a malloc followed by a memset. The
// memset is one store per 8 bytes up to a cache line per iteration —
// cheap for small objects, senior-queue-hidden for large ones, but it
// warms (or pollutes) the data cache exactly like the real thing.
func (h *Heap) Calloc(tc *ThreadCache, size uint64) uint64 {
	addr := h.Malloc(tc, size)
	e := h.emFor(tc)
	prev := e.Step(uop.StepOther)
	rounded := size
	if c, r, ok := h.SizeMap.ClassFor(size); ok && c > 0 {
		rounded = r
	}
	dep := e.ALU(uop.NoDep, uop.NoDep)
	for off := uint64(0); off < rounded; off += mem.CacheLineSize {
		e.Store(addr+off, dep, uop.NoDep)
	}
	e.Branch(siteCarveLoop, false, dep)
	e.Step(prev)
	// The object's in-band word is cleared (first word of the region).
	h.Space.WriteWord(addr, 0)
	return addr
}

// Realloc resizes an allocation. Like TCMalloc, it returns the old block
// when the new size still fits the current size class (or shrinks by less
// than half), and otherwise allocates, copies, and frees.
// oldSize is the sized-delete hint for the old block (0 = unknown).
func (h *Heap) Realloc(tc *ThreadCache, ptr uint64, oldSize, newSize uint64) uint64 {
	e := h.emFor(tc)
	if ptr == 0 {
		return h.Malloc(tc, newSize)
	}
	if newSize == 0 {
		h.Free(tc, ptr, oldSize)
		return 0
	}

	// In-place check: both sizes small and same class, or a moderate
	// shrink.
	oldClass, _, oldSmall := h.SizeMap.ClassFor(oldSize)
	newClass, _, newSmall := h.SizeMap.ClassFor(newSize)
	if oldSize > 0 && oldSmall && newSmall &&
		(oldClass == newClass || (newSize < oldSize && newSize*2 >= oldSize)) {
		// Fast path: size-class computation only, then return.
		e.Step(uop.StepCallOverhead)
		e.Store(tc.stackAddr, uop.NoDep, uop.NoDep)
		e.ALU(uop.NoDep, uop.NoDep)
		e.Step(uop.StepSizeClass)
		h.emitFreeSizeClass(e, newSize, newClass)
		h.emitEpilogue(e, tc)
		return ptr
	}

	// Move: allocate, copy min(old,new), free.
	fresh := h.Malloc(tc, newSize)
	prev := e.Step(uop.StepOther)
	n := oldSize
	if newSize < n {
		n = newSize
	}
	if n == 0 {
		n = 8
	}
	dep := uop.NoDep
	for off := uint64(0); off < n; off += mem.CacheLineSize {
		ld := e.Load(ptr+off, dep)
		e.Store(fresh+off, ld, uop.NoDep)
	}
	e.Step(prev)
	h.Free(tc, ptr, oldSize)
	return fresh
}
