package tcmalloc

import "mallacc/internal/stats"

// DefaultSampleInterval is the mean byte interval between sampled
// allocations (gperftools' default tcmalloc_sample_parameter: 512 KiB).
const DefaultSampleInterval = 512 << 10

// Sampler is the per-thread byte-interval sampler: it draws the gap to the
// next sample from an exponential distribution so sampling is unbiased with
// respect to allocation size. In the baseline this is the "counter must be
// decremented and checked against the threshold each time" cost on the fast
// path (Sec. 3.3); with Mallacc the same draw arms the hardware counter.
type Sampler struct {
	rng         *stats.RNG
	mean        float64
	until       int64 // bytes until next sample
	Samples     uint64
	counterAddr uint64 // simulated address of the software counter word
}

// NewSampler creates a sampler with the given mean interval in bytes (0
// disables sampling) and the simulated address of its counter.
func NewSampler(rng *stats.RNG, meanBytes int64, counterAddr uint64) *Sampler {
	s := &Sampler{rng: rng, mean: float64(meanBytes), counterAddr: counterAddr}
	if meanBytes > 0 {
		s.until = s.draw()
	}
	return s
}

// Enabled reports whether sampling is active.
func (s *Sampler) Enabled() bool { return s.mean > 0 }

// Reset rewinds the sampler to its just-built state over a fresh generator,
// replaying the initial threshold draw exactly as NewSampler does. The mean
// and counter address are construction-time constants and stay put.
func (s *Sampler) Reset(rng *stats.RNG) {
	s.rng = rng
	s.Samples = 0
	s.until = 0
	if s.mean > 0 {
		s.until = s.draw()
	}
}

// CounterAddr is the simulated address the software fast path loads and
// stores.
func (s *Sampler) CounterAddr() uint64 { return s.counterAddr }

func (s *Sampler) draw() int64 {
	v := int64(s.mean * s.rng.ExpFloat64())
	if v < 1 {
		v = 1
	}
	return v
}

// Account subtracts size from the countdown and reports whether this
// allocation is sampled, re-arming the countdown if so.
func (s *Sampler) Account(size uint64) bool {
	if !s.Enabled() {
		return false
	}
	s.until -= int64(size)
	if s.until > 0 {
		return false
	}
	s.until = s.draw()
	s.Samples++
	return true
}

// NextThreshold returns a fresh exponential threshold for arming the
// hardware counter.
func (s *Sampler) NextThreshold() int64 { return s.draw() }
