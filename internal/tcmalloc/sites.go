package tcmalloc

// Branch-site identifiers. The CPU's branch predictor is indexed by these,
// standing in for static branch PCs; each distinct conditional branch in
// the allocator gets its own site so prediction behaviour matches the
// paper's observation that the fast path's "few conditional branches ...
// are easy to predict".
const (
	siteIsSmall uint32 = iota + 1
	siteSizeBranch
	siteSampleCheck
	siteListEmpty
	siteMcSzHit
	siteMcPopHit
	siteFreeSmall
	siteListTooLong
	siteCacheTooBig
	siteTransferHit
	siteSpanHasFree
	siteHeapListHit
	siteHeapLargeFit
	siteHeapCoalesce
	siteFetchLoop
	siteReleaseLoop
	siteCarveLoop
	siteSampledAlloc
)
