// Package tcmalloc is a functionally faithful re-implementation of the
// TCMalloc allocator (at the revision the paper evaluates) over a simulated
// address space. It reproduces the structures Mallacc interacts with: the
// size map with the exact class-index computation of the paper's Figure 5,
// per-thread caches of singly linked free lists whose next pointers live
// in-band in free objects (Figure 7), a transfer cache and central free
// lists holding spans, a span-based page heap with coalescing, a three-
// level radix page map, and the byte-interval sampler.
//
// Every operation both executes functionally and emits the micro-ops an
// x86 core would run for it, in one of two modes: the baseline software
// fast path or the Mallacc-accelerated fast path using the five new
// instructions modeled in internal/core.
package tcmalloc

import (
	"fmt"

	"mallacc/internal/mem"
)

// Size map constants, matching gperftools at the evaluated revision.
const (
	// Alignment is the minimum alignment of any allocation.
	Alignment = 8
	// MinAlign is the minimum size-class spacing.
	MinAlign = 16
	// MaxSmallSize is the boundary between the two class-index formulas
	// (Fig. 5).
	MaxSmallSize = 1024
	// MaxSize is the largest "small" allocation served by thread caches;
	// larger requests go straight to spans (Sec. 3.1: < 256KB).
	MaxSize = 256 << 10
	// ClassArraySize is the number of class indices
	// ("slightly above 2100 ... fixed in 2007", Sec. 3.3).
	ClassArraySize = ((MaxSize + 127 + (120 << 7)) >> 7) + 1
	// MaxNumClasses bounds the generated class count (gperftools uses 88
	// at this revision; the generator asserts it stays within bounds).
	MaxNumClasses = 96
)

// ClassIndex implements the exact mapping of the paper's Figure 5: small
// sizes are spaced by 8, larger ones by 128 with an offset.
func ClassIndex(size uint64) uint64 {
	if size <= MaxSmallSize {
		return (size + 7) >> 3
	}
	return (size + 15487) >> 7
}

// SizeMap holds the size-class tables: classArray maps a class index to a
// size class, classToSize maps a class to its rounded allocation size, and
// numToMove gives the transfer-cache batch size per class.
type SizeMap struct {
	numClasses  int
	classArray  [ClassArraySize]uint8
	classToSize [MaxNumClasses]uint64
	classPages  [MaxNumClasses]uint64 // span length used to refill a class
	numToMove   [MaxNumClasses]int    // batch size between central and thread caches

	// Simulated addresses of the two lookup arrays, so table loads on the
	// software fast path hit the cache models at stable locations
	// ("the two array lookups can be comparatively costly", Sec. 3.3).
	classArrayAddr  uint64
	classToSizeAddr uint64
}

// NewSizeMap generates the size classes with the gperftools algorithm:
// classes are spaced by an alignment that grows with size (keeping internal
// fragmentation bounded by ~12.5%), and adjacent candidates that would use
// the same span geometry are merged.
func NewSizeMap(arena *mem.Arena) *SizeMap {
	sm := &SizeMap{}
	sm.classArrayAddr = arena.Alloc(ClassArraySize, 64)
	sm.classToSizeAddr = arena.Alloc(MaxNumClasses*8, 64)

	// Class 0 is reserved (means "not a small allocation").
	sc := 1
	for size := uint64(MinAlign); size <= MaxSize; size += alignmentForSize(size) {
		if sc >= MaxNumClasses {
			panic("tcmalloc: size class overflow")
		}
		blocksToMove := numMoveSize(size) / 4
		var psize uint64
		for {
			psize += mem.PageSize
			// Allocate enough pages so the leftover after slicing into
			// objects is at most 1/8 of the span.
			for (psize % size) > (psize >> 3) {
				psize += mem.PageSize
			}
			if psize/size >= uint64(blocksToMove) {
				break
			}
		}
		pages := psize >> mem.PageShift
		if sc > 1 && pages == sm.classPages[sc-1] &&
			psize/size == (sm.classPages[sc-1]<<mem.PageShift)/sm.classToSize[sc-1] {
			// Same span geometry as the previous class: merge by widening
			// the previous class to this size.
			sm.classToSize[sc-1] = size
			continue
		}
		sm.classToSize[sc] = size
		sm.classPages[sc] = pages
		sm.numToMove[sc] = clampMove(numMoveSize(size))
		sc++
	}
	sm.numClasses = sc

	// Fill the index -> class array.
	next := 0
	for c := 1; c < sc; c++ {
		maxIdx := int(ClassIndex(sm.classToSize[c]))
		for i := next; i <= maxIdx; i++ {
			sm.classArray[i] = uint8(c)
		}
		next = maxIdx + 1
	}
	if next != int(ClassIndex(MaxSize))+1 {
		panic(fmt.Sprintf("tcmalloc: class array incomplete: filled %d of %d", next, ClassIndex(MaxSize)+1))
	}
	return sm
}

// alignmentForSize mirrors gperftools AlignmentForSize: spacing grows with
// size so relative fragmentation stays bounded.
func alignmentForSize(size uint64) uint64 {
	var align uint64
	switch {
	case size > MaxSize:
		align = mem.PageSize
	case size >= 128:
		align = (uint64(1) << lgFloor(size)) / 8
	case size >= MinAlign:
		align = MinAlign
	default:
		align = Alignment
	}
	if align > mem.PageSize {
		align = mem.PageSize
	}
	return align
}

func lgFloor(n uint64) uint {
	var lg uint
	for n > 1 {
		n >>= 1
		lg++
	}
	return lg
}

// numMoveSize mirrors gperftools SizeMap::NumMoveSize: aim to move 64KB per
// central-cache transfer.
func numMoveSize(size uint64) int {
	if size == 0 {
		return 0
	}
	n := int((64 << 10) / size)
	if n < 2 {
		n = 2
	}
	if n > 32 {
		n = 32
	}
	return n
}

func clampMove(n int) int {
	if n < 2 {
		return 2
	}
	if n > 32 {
		return 32
	}
	return n
}

// NumClasses returns the number of size classes (including reserved class
// 0).
func (sm *SizeMap) NumClasses() int { return sm.numClasses }

// SizeClass returns the class for a small request (size <= MaxSize).
func (sm *SizeMap) SizeClass(size uint64) uint8 {
	return sm.classArray[ClassIndex(size)]
}

// ClassSize returns the rounded allocation size of a class.
func (sm *SizeMap) ClassSize(class uint8) uint64 { return sm.classToSize[class] }

// ClassPages returns the span length, in pages, used to refill a class.
func (sm *SizeMap) ClassPages(class uint8) uint64 { return sm.classPages[class] }

// NumToMove returns the transfer batch size of a class.
func (sm *SizeMap) NumToMove(class uint8) int { return sm.numToMove[class] }

// ClassFor returns the class for size along with its rounded size, or
// ok=false for large allocations.
func (sm *SizeMap) ClassFor(size uint64) (class uint8, rounded uint64, ok bool) {
	if size > MaxSize {
		return 0, 0, false
	}
	if size == 0 {
		size = 1
	}
	c := sm.SizeClass(size)
	return c, sm.classToSize[c], true
}

// ClassArrayAddr returns the simulated address of the index->class array.
func (sm *SizeMap) ClassArrayAddr() uint64 { return sm.classArrayAddr }

// ClassToSizeAddr returns the simulated address of the class->size array.
func (sm *SizeMap) ClassToSizeAddr() uint64 { return sm.classToSizeAddr }
