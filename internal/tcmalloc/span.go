package tcmalloc

import "mallacc/internal/mem"

// SpanLocation tracks where a span currently lives.
type SpanLocation uint8

const (
	// SpanInUse means the span is carved into objects (small classes) or
	// handed out whole (large allocation).
	SpanInUse SpanLocation = iota
	// SpanOnFreeList means the span sits on a page-heap free list.
	SpanOnFreeList
)

// Span is a contiguous run of allocator pages, the unit the page heap
// manages and the central free lists carve into size-class objects.
type Span struct {
	// Start is the first page ID, Length the page count.
	Start  uint64
	Length uint64
	// SizeClass is the small class this span is carved for (0 = large).
	SizeClass uint8
	Location  SpanLocation

	// Refcount counts live (allocated) objects carved from this span.
	Refcount int
	// FreeHead is the in-memory linked list of this span's free objects
	// (managed by the central free list); zero when empty.
	FreeHead uint64
	// FreeCount is the number of objects on FreeHead.
	FreeCount int

	// MetaAddr is the simulated address of the span struct itself, so
	// span-header accesses (e.g. reading SizeClass on free) hit the cache
	// models realistically.
	MetaAddr uint64

	// prev/next link spans on page-heap free lists.
	prev, next *Span
}

// StartAddr returns the byte address of the span's first page.
func (s *Span) StartAddr() uint64 { return s.Start << mem.PageShift }

// ByteLen returns the span size in bytes.
func (s *Span) ByteLen() uint64 { return s.Length << mem.PageShift }

// spanList is an intrusive doubly linked list of spans with a sentinel-free
// head, mirroring the page heap's per-length lists.
type spanList struct {
	head *Span
	n    int
}

func (l *spanList) empty() bool { return l.head == nil }

func (l *spanList) len() int { return l.n }

func (l *spanList) pushFront(s *Span) {
	s.prev = nil
	s.next = l.head
	if l.head != nil {
		l.head.prev = s
	}
	l.head = s
	l.n++
}

func (l *spanList) popFront() *Span {
	s := l.head
	if s == nil {
		return nil
	}
	l.remove(s)
	return s
}

func (l *spanList) remove(s *Span) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		l.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	}
	s.prev, s.next = nil, nil
	l.n--
}
