package tcmalloc

import (
	"fmt"

	"mallacc/internal/core"
	"mallacc/internal/stats"
	"mallacc/internal/uop"
)

// Thread-cache tuning constants (gperftools values at the evaluated
// revision).
const (
	// maxThreadCacheSize caps the bytes a thread cache may hold before
	// scavenging ("if that free list now exceeds a certain size (2MB)",
	// Sec. 3.1 — gperftools kMaxThreadCacheSize).
	maxThreadCacheSize = 2 << 20
	// maxDynamicFreeListLength caps per-list slow-start growth.
	maxDynamicFreeListLength = 8192
)

// freeList is one per-class singly linked list of free objects. The head
// pointer and the next pointers live in simulated memory (the in-band trick
// of Sec. 3.3: "*head is the value of the next pointer"); the Go-side
// fields shadow lengths for bookkeeping.
type freeList struct {
	headAddr uint64 // simulated address of the head pointer word
	length   int
	maxLen   int
	lowWater int
}

// ThreadCache is a per-thread top-level pool: one free list per size class,
// with slow-start list caps and byte-budget scavenging.
type ThreadCache struct {
	ID    int
	heap  *Heap
	lists []freeList
	// baseAddr anchors the metadata block; list headers are laid out at
	// baseAddr + class*32 so fast-path metadata accesses have realistic
	// locality.
	baseAddr uint64
	// size is the total bytes currently cached.
	size uint64
	// stackAddr anchors the simulated call stack (prologue/epilogue
	// accesses, stack-trace capture); tlsAddr holds the thread-cache
	// pointer the fast path loads first.
	stackAddr uint64
	tlsAddr   uint64
	sampler   *Sampler

	// Per-thread overrides of heap-level state, so concurrent cores in the
	// multicore engine's parallel scheduler can run disjoint fast paths
	// without touching shared fields. When nil, the heap-level instance is
	// used (the single-core harness path).
	//
	// MC/HW are the core-local accelerator state (malloc cache, sampling
	// PMU counter); Em is a core-local trace emitter; Stats is a per-thread
	// shard summed into Heap.StatsSnapshot.
	MC *core.MallocCache
	HW *core.SampleCounter
	Em *uop.Emitter

	// Gate, when set, is invoked before any operation that leaves thread-
	// local state for the shared tiers (central lists, page heap, page map).
	// The parallel multicore scheduler installs a hook that blocks until the
	// core's deterministic turn at the shared structures arrives.
	Gate func()

	// Stats
	Hits, Misses uint64
	Scavenges    uint64
	ListTooLongs uint64
	Stats        HeapStats
}

// gate runs the shared-structure admission hook, if installed.
func (tc *ThreadCache) gate() {
	if tc.Gate != nil {
		tc.Gate()
	}
}

func newThreadCache(h *Heap, id int) *ThreadCache {
	n := h.SizeMap.NumClasses()
	base := h.Arena.Alloc(uint64(n)*32, 64)
	tc := &ThreadCache{ID: id, heap: h, baseAddr: base, lists: make([]freeList, n)}
	for c := range tc.lists {
		tc.lists[c].headAddr = base + uint64(c)*32
		tc.lists[c].maxLen = 1
	}
	return tc
}

// Reset returns the thread cache to its just-built state over a fresh
// sampler stream: empty lists at the slow-start cap, zeroed statistics. The
// metadata addresses (list headers, stack, TLS word, sample counter) are
// construction-time constants and survive, which is what lets a pooled run
// replay a fresh run's trace byte for byte.
func (tc *ThreadCache) Reset(samplerRNG *stats.RNG) {
	for c := range tc.lists {
		l := &tc.lists[c]
		l.length, l.maxLen, l.lowWater = 0, 1, 0
	}
	tc.size = 0
	tc.Hits, tc.Misses = 0, 0
	tc.Scavenges, tc.ListTooLongs = 0, 0
	tc.Stats = HeapStats{}
	tc.sampler.Reset(samplerRNG)
}

// listHeadAddr returns the simulated address of class cl's head pointer.
func (tc *ThreadCache) listHeadAddr(cl uint8) uint64 { return tc.lists[cl].headAddr }

// listMetaAddr returns the simulated address of class cl's length/metadata
// words.
func (tc *ThreadCache) listMetaAddr(cl uint8) uint64 { return tc.lists[cl].headAddr + 8 }

// Length returns the current length of class cl's list.
func (tc *ThreadCache) Length(cl uint8) int { return tc.lists[cl].length }

// CachedBytes returns the thread cache's current byte footprint.
func (tc *ThreadCache) CachedBytes() uint64 { return tc.size }

// Head returns the real head pointer of class cl's free list (from
// simulated memory).
func (tc *ThreadCache) Head(cl uint8) uint64 {
	return tc.heap.Space.ReadWord(tc.lists[cl].headAddr)
}

// popEmit pops the head of class cl's list, emitting the Figure 7 sequence:
// load head, load *head, store head=next. addrDep is the dataflow producing
// the list address (normally the size-class lookup). Returns the object.
// The caller must have ensured the list is non-empty.
func (tc *ThreadCache) popEmit(e *uop.Emitter, cl uint8, addrDep uop.Val) (uint64, uop.Val) {
	l := &tc.lists[cl]
	head := tc.heap.Space.ReadWord(l.headAddr)
	if head == 0 || l.length == 0 {
		panic(fmt.Sprintf("tcmalloc: pop from empty list class %d", cl))
	}
	next := tc.heap.Space.ReadWord(head)
	hDep := e.Load(l.headAddr, addrDep) // temp = *head_ptr
	nDep := e.Load(head, hDep)          // next = *temp
	e.Store(l.headAddr, nDep, uop.NoDep)
	tc.heap.Space.WriteWord(l.headAddr, next)
	l.length--
	tc.size -= tc.heap.SizeMap.ClassSize(cl)
	return head, nDep
}

// pushEmit pushes ptr onto class cl's list, emitting load head, store
// *ptr=head, store head=ptr.
func (tc *ThreadCache) pushEmit(e *uop.Emitter, cl uint8, ptr uint64, addrDep uop.Val) uop.Val {
	l := &tc.lists[cl]
	old := tc.heap.Space.ReadWord(l.headAddr)
	hDep := e.Load(l.headAddr, addrDep)
	e.Store(ptr, addrDep, hDep)
	e.Store(l.headAddr, addrDep, uop.NoDep)
	tc.heap.Space.WriteWord(ptr, old)
	tc.heap.Space.WriteWord(l.headAddr, ptr)
	l.length++
	if l.length < l.lowWater {
		l.lowWater = l.length
	}
	tc.size += tc.heap.SizeMap.ClassSize(cl)
	return hDep
}

// metaUpdateEmit emits the bookkeeping of a fast-path call: the free-list
// length and the cache's total size ("updates to metadata fields (such as
// free list lengths and total size)", Sec. 3.3).
func (tc *ThreadCache) metaUpdateEmit(e *uop.Emitter, cl uint8, dep uop.Val) {
	m := e.Load(tc.listMetaAddr(cl), dep)
	a := e.ALU(m, uop.NoDep)
	e.Store(tc.listMetaAddr(cl), a, uop.NoDep)
	b := e.ALU(uop.NoDep, uop.NoDep) // total-size accounting
	e.Store(tc.listMetaAddr(cl)+8, b, uop.NoDep)
}

// fetchFromCentral refills class cl's list from the central free list and
// returns one object to satisfy the triggering request. Implements
// slow-start: fetch min(maxLen, batch), then grow maxLen.
func (tc *ThreadCache) fetchFromCentral(e *uop.Emitter, cl uint8) uint64 {
	tc.Misses++
	l := &tc.lists[cl]
	batchSize := tc.heap.SizeMap.NumToMove(cl)
	n := l.maxLen
	if n > batchSize {
		n = batchSize
	}
	if n < 1 {
		n = 1
	}
	head, got := tc.heap.Central[cl].RemoveRange(e, n)
	if got == 0 || head == 0 {
		panic("tcmalloc: central cache returned nothing")
	}
	// Return the first object to the caller; splice the rest into the
	// (empty) list.
	first := head
	rest := tc.heap.Space.ReadWord(first)
	dep := e.Load(first, uop.NoDep)
	tc.heap.Space.WriteWord(first, 0)
	if got > 1 {
		tc.heap.Space.WriteWord(l.headAddr, rest)
		e.Store(l.headAddr, dep, uop.NoDep)
		l.length += got - 1
		tc.size += uint64(got-1) * tc.heap.SizeMap.ClassSize(cl)
	}
	// Slow-start growth of the allowed list length.
	if l.maxLen < batchSize {
		l.maxLen++
	} else {
		nl := l.maxLen + batchSize
		if nl > maxDynamicFreeListLength {
			nl = maxDynamicFreeListLength
		}
		nl -= nl % batchSize
		l.maxLen = nl
	}
	e.Store(tc.listMetaAddr(cl), dep, uop.NoDep)
	return first
}

// listTooLong handles a deallocation that pushed a list past its cap:
// release one batch back to the central list.
func (tc *ThreadCache) listTooLong(e *uop.Emitter, cl uint8) {
	tc.ListTooLongs++
	tc.releaseToCentral(e, cl, tc.heap.SizeMap.NumToMove(cl))
	l := &tc.lists[cl]
	// After an overflow, gperftools allows the list to grow again slowly.
	if l.maxLen < maxDynamicFreeListLength {
		l.maxLen += tc.heap.SizeMap.NumToMove(cl) / 2
		if l.maxLen > maxDynamicFreeListLength {
			l.maxLen = maxDynamicFreeListLength
		}
	}
}

// releaseToCentral pops n objects off the list into a chain and hands it to
// the central free list.
func (tc *ThreadCache) releaseToCentral(e *uop.Emitter, cl uint8, n int) {
	l := &tc.lists[cl]
	if n > l.length {
		n = l.length
	}
	if n == 0 {
		return
	}
	var chain uint64
	dep := uop.NoDep
	for i := 0; i < n; i++ {
		head := tc.heap.Space.ReadWord(l.headAddr)
		next := tc.heap.Space.ReadWord(head)
		hDep := e.Load(l.headAddr, dep)
		nDep := e.Load(head, hDep)
		e.Store(l.headAddr, nDep, uop.NoDep)
		tc.heap.Space.WriteWord(l.headAddr, next)
		tc.heap.Space.WriteWord(head, chain)
		e.Store(head, nDep, uop.NoDep)
		chain = head
		dep = nDep
	}
	l.length -= n
	if l.length < l.lowWater {
		l.lowWater = l.length
	}
	tc.size -= uint64(n) * tc.heap.SizeMap.ClassSize(cl)
	// The malloc cache's copies for this class are now stale; the modified
	// allocator invalidates them (one push of NULL, see DESIGN.md).
	if mc := tc.heap.mcFor(tc); mc != nil && !tc.heap.Cfg.Ablate.NoListCache {
		mc.InvalidateClass(cl)
		e.Mallacc(uop.McHdPush, -1, false, 0, dep, 0)
	}
	tc.heap.Central[cl].InsertRange(e, chain, n)
}

// scavenge trims every list to half its low-water mark, invoked when the
// cache exceeds its byte budget — gperftools' Scavenge.
func (tc *ThreadCache) scavenge(e *uop.Emitter) {
	tc.Scavenges++
	for cl := 1; cl < len(tc.lists); cl++ {
		l := &tc.lists[cl]
		drop := l.lowWater / 2
		if drop > 0 {
			tc.releaseToCentral(e, uint8(cl), drop)
			if l.maxLen > 1 {
				l.maxLen--
			}
		}
		l.lowWater = l.length
	}
}

// CheckInvariants walks every list verifying the simulated-memory links
// match the recorded lengths.
func (tc *ThreadCache) CheckInvariants() {
	var bytes uint64
	for cl := 1; cl < len(tc.lists); cl++ {
		l := &tc.lists[cl]
		n := 0
		for obj := tc.heap.Space.ReadWord(l.headAddr); obj != 0; obj = tc.heap.Space.ReadWord(obj) {
			n++
			if n > l.length {
				break
			}
		}
		if n != l.length {
			panic(fmt.Sprintf("tcmalloc: thread %d class %d list length %d != recorded %d", tc.ID, cl, n, l.length))
		}
		bytes += uint64(l.length) * tc.heap.SizeMap.ClassSize(uint8(cl))
	}
	if bytes != tc.size {
		panic(fmt.Sprintf("tcmalloc: thread %d cached bytes %d != recorded %d", tc.ID, bytes, tc.size))
	}
}
