package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics text exposition of a Snapshot, for Prometheus-compatible
// scrapers. The mapping rules (documented in DESIGN.md §14):
//
//   - Every dotted metric name becomes "mallacc_" + the name with each
//     character outside [a-zA-Z0-9_] replaced by '_' ("mc.pop.hits" →
//     mallacc_mc_pop_hits). The fixed prefix both namespaces the fleet and
//     guarantees the result never starts with a digit.
//   - Two dotted names that mangle to the same family (e.g. "a.b" and
//     "a-b") are disambiguated deterministically: the later name in
//     snapshot (sorted) order gets a "_2", "_3", ... suffix.
//   - Counters expose one sample, "<family>_total". Gauges expose
//     "<family>". Histograms expose cumulative "<family>_bucket{le="..."}"
//     series plus "<family>_sum" and "<family>_count".
//   - "# TYPE" always precedes a family's samples; "# HELP" is emitted when
//     the registry has a description (Registry.Describe). The output ends
//     with "# EOF".

// OpenMetricsContentType is the content type of the text exposition format.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// OpenMetrics renders the snapshot in OpenMetrics text exposition format.
// The output is deterministic: families appear in snapshot (metric-name)
// order.
func OpenMetrics(s Snapshot) []byte {
	var b strings.Builder
	used := map[string]bool{}
	for _, m := range s.Metrics {
		fam := exposedName(m.Name, used)
		if m.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(fam)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(m.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(fam)
		switch m.Kind {
		case KindCounter:
			b.WriteString(" counter\n")
			b.WriteString(fam)
			b.WriteString("_total ")
			b.WriteString(strconv.FormatUint(uint64(m.Value), 10))
			b.WriteByte('\n')
		case KindHistogram:
			b.WriteString(" histogram\n")
			writeHistogram(&b, fam, m)
		default:
			b.WriteString(" gauge\n")
			b.WriteString(fam)
			b.WriteByte(' ')
			b.WriteString(formatValue(m.Value))
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

func writeHistogram(b *strings.Builder, fam string, m Metric) {
	buckets := m.Buckets
	if len(buckets) == 0 {
		// A histogram registered without bucket data (e.g. a snapshot that
		// crossed a JSON round trip) still exposes a valid single-bucket
		// series carrying its count.
		buckets = []HistBucket{{LE: math.Inf(1), Count: m.Count}}
	}
	for _, hb := range buckets {
		b.WriteString(fam)
		b.WriteString(`_bucket{le="`)
		b.WriteString(formatLE(hb.LE))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(hb.Count, 10))
		b.WriteByte('\n')
	}
	b.WriteString(fam)
	b.WriteString("_sum ")
	b.WriteString(strconv.FormatUint(m.Sum, 10))
	b.WriteByte('\n')
	b.WriteString(fam)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatUint(m.Count, 10))
	b.WriteByte('\n')
}

// exposedName mangles a dotted metric name into a unique exposition family
// name, recording it in used.
func exposedName(name string, used map[string]bool) string {
	base := "mallacc_" + mangle(name)
	fam := base
	for n := 2; used[fam]; n++ {
		fam = base + "_" + strconv.Itoa(n)
	}
	used[fam] = true
	return fam
}

// mangle replaces every character outside the exposition-name alphabet
// with '_'.
func mangle(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLE renders a bucket upper bound: +Inf for the closing bucket,
// shortest-round-trip decimal otherwise.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a sample value. NaN and infinities are legal in the
// format; everything the simulator produces is finite.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes the characters the format requires escaping in HELP
// text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExposedFamilies returns the mangled family name of every metric in the
// snapshot, sorted, applying the same collision rules as OpenMetrics. The
// lint tooling uses it to verify the exposition covers the whole registry.
func ExposedFamilies(s Snapshot) []string {
	used := map[string]bool{}
	out := make([]string, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		out = append(out, exposedName(m.Name, used))
	}
	sort.Strings(out)
	return out
}
