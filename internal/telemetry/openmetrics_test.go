package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mallacc/internal/stats"
)

// goldenSnapshot builds a registry exercising every metric kind plus the
// name-mangling edge cases, with deterministic values.
func goldenSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("jobs.submitted", func() uint64 { return 42 })
	reg.Describe("jobs.submitted", "Jobs admitted to the queue.")
	reg.Gauge("queue.depth", func() float64 { return 3.5 })
	reg.Counter("odd-name.1st", func() uint64 { return 7 }) // hyphen + digit segment
	h := stats.NewDurationHist()
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	reg.Histogram("malloc.cycles", h)
	reg.Describe("malloc.cycles", "Per-call malloc latency.\nSecond line \\ slash.")
	// The design-space backends' namespaces (internal/lockfree and
	// internal/offload register these shapes; the packages themselves can't
	// be imported here without a cycle).
	reg.Counter("lockfree.cas.retries", func() uint64 { return 9 })
	reg.Describe("lockfree.cas.retries", "Failed CAS attempts on size-class stack heads.")
	reg.Gauge("offload.queue.mean_depth", func() float64 { return 1.25 })
	reg.Describe("offload.queue.mean_depth", "Mean allocation-core queue depth observed at arrival.")
	return reg.Snapshot()
}

func TestOpenMetricsGolden(t *testing.T) {
	got := OpenMetrics(goldenSnapshot())
	golden := filepath.Join("testdata", "openmetrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestOpenMetricsLintsClean(t *testing.T) {
	doc := OpenMetrics(goldenSnapshot())
	if err := LintOpenMetrics(doc); err != nil {
		t.Fatalf("golden exposition fails its own linter: %v\n%s", err, doc)
	}
}

func TestMangleEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mc.pop.hits", "mc_pop_hits"},
		{"odd-name", "odd_name"},
		{"1st.metric", "1st_metric"}, // prefix guards the leading digit
		{"UPPER.ok", "UPPER_ok"},
		{"sp ace/slash", "sp_ace_slash"},
		{"dots..doubled", "dots__doubled"},
	}
	for _, c := range cases {
		if got := mangle(c.in); got != c.want {
			t.Errorf("mangle(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExposedNameCollisions(t *testing.T) {
	used := map[string]bool{}
	a := exposedName("a.b", used)
	b := exposedName("a-b", used)
	c := exposedName("a_b", used)
	if a != "mallacc_a_b" || b != "mallacc_a_b_2" || c != "mallacc_a_b_3" {
		t.Fatalf("collision suffixes wrong: %q %q %q", a, b, c)
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	h := stats.NewDurationHist()
	for i := uint64(1); i < 5000; i = i*3 + 1 {
		h.Add(i)
	}
	reg := NewRegistry()
	reg.Histogram("lat", h)
	s := reg.Snapshot()
	var m *Metric
	for i := range s.Metrics {
		if s.Metrics[i].Name == "lat" {
			m = &s.Metrics[i]
		}
	}
	if m == nil || len(m.Buckets) == 0 {
		t.Fatal("histogram snapshot lost its buckets")
	}
	prevLE := -1.0
	prevCount := uint64(0)
	for _, b := range m.Buckets[:len(m.Buckets)-1] {
		if b.LE <= prevLE {
			t.Fatalf("bucket le not increasing: %v then %v", prevLE, b.LE)
		}
		if b.Count < prevCount {
			t.Fatalf("cumulative count decreased: %d then %d", prevCount, b.Count)
		}
		prevLE, prevCount = b.LE, b.Count
	}
	last := m.Buckets[len(m.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != m.Count {
		t.Fatalf("closing bucket %+v does not cover count %d", last, m.Count)
	}
}

func TestOpenMetricsCoversEveryMetric(t *testing.T) {
	s := goldenSnapshot()
	doc := string(OpenMetrics(s))
	for _, fam := range ExposedFamilies(s) {
		if !strings.Contains(doc, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
}

func TestLintRejectsBrokenDocs(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"no-eof", "# TYPE mallacc_x counter\nmallacc_x_total 1\n"},
		{"blank-line", "# TYPE mallacc_x counter\n\nmallacc_x_total 1\n# EOF\n"},
		{"dup-type", "# TYPE mallacc_x counter\nmallacc_x_total 1\n# TYPE mallacc_x counter\nmallacc_x_total 1\n# EOF\n"},
		{"orphan-sample", "mallacc_x_total 1\n# EOF\n"},
		{"counter-bare-name", "# TYPE mallacc_x counter\nmallacc_x 1\n# EOF\n"},
		{"gauge-total-suffix", "# TYPE mallacc_x gauge\nmallacc_x_total 1\n# EOF\n"},
		{"negative-counter", "# TYPE mallacc_x counter\nmallacc_x_total -1\n# EOF\n"},
		{"bad-name", "# TYPE 9bad counter\n9bad_total 1\n# EOF\n"},
		{"hist-no-inf", "# TYPE mallacc_h histogram\nmallacc_h_bucket{le=\"1\"} 1\nmallacc_h_sum 1\nmallacc_h_count 1\n# EOF\n"},
		{"hist-le-regress", "# TYPE mallacc_h histogram\nmallacc_h_bucket{le=\"2\"} 1\nmallacc_h_bucket{le=\"1\"} 1\nmallacc_h_bucket{le=\"+Inf\"} 1\nmallacc_h_sum 1\nmallacc_h_count 1\n# EOF\n"},
		{"hist-count-drop", "# TYPE mallacc_h histogram\nmallacc_h_bucket{le=\"1\"} 2\nmallacc_h_bucket{le=\"+Inf\"} 1\nmallacc_h_sum 1\nmallacc_h_count 1\n# EOF\n"},
		{"hist-count-mismatch", "# TYPE mallacc_h histogram\nmallacc_h_bucket{le=\"+Inf\"} 2\nmallacc_h_sum 1\nmallacc_h_count 1\n# EOF\n"},
	}
	for _, c := range cases {
		if err := LintOpenMetrics([]byte(c.doc)); err == nil {
			t.Errorf("%s: lint accepted a broken document", c.name)
		}
	}
}

func TestLintAcceptsMinimalDoc(t *testing.T) {
	doc := "# TYPE mallacc_up gauge\nmallacc_up 1\n# EOF\n"
	if err := LintOpenMetrics([]byte(doc)); err != nil {
		t.Fatalf("minimal valid doc rejected: %v", err)
	}
}
