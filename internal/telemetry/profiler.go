package telemetry

import "mallacc/internal/stats"

// StepProfiler attributes per-call cycles to named fast-path steps (the uop
// step tags: sizeclass, sampling, pushpop, other, callovh). The CPU model
// reports each allocator call's per-step cycle occupancy; the profiler
// accumulates totals and per-call histograms, making the paper's Figure 4
// breakdown observable on every run instead of only in the dedicated
// ablation experiment.
//
// Attribution semantics: a step's cycles for one call are the summed
// execution occupancy (issue to completion, plus any misprediction redirect
// the step's branches caused) of the micro-ops carrying that tag. Steps
// overlap in an out-of-order core, so per-call step cycles can sum to more
// than the call's duration; the numbers answer "how much work did this step
// issue", the same additive question Figure 4 asks.
type StepProfiler struct {
	names  []string
	cycles []uint64
	uops   []uint64
	calls  []uint64 // calls in which the step appeared with nonzero cycles
	hists  []*stats.DurationHist
}

// NewStepProfiler builds a profiler over the given step names, in tag
// order.
func NewStepProfiler(names []string) *StepProfiler {
	p := &StepProfiler{
		names:  append([]string(nil), names...),
		cycles: make([]uint64, len(names)),
		uops:   make([]uint64, len(names)),
		calls:  make([]uint64, len(names)),
		hists:  make([]*stats.DurationHist, len(names)),
	}
	for i := range p.hists {
		p.hists[i] = stats.NewDurationHist()
	}
	return p
}

// ObserveCall records one allocator call's per-step cycle and micro-op
// counts (indexed by step tag). Steps with zero cycles in this call leave
// their histogram untouched so the per-call distributions describe calls
// that actually exercised the step.
func (p *StepProfiler) ObserveCall(cycles, uops []uint64) {
	for i := 0; i < len(p.cycles) && i < len(cycles); i++ {
		p.cycles[i] += cycles[i]
		if i < len(uops) {
			p.uops[i] += uops[i]
		}
		if cycles[i] > 0 {
			p.calls[i]++
			p.hists[i].Add(cycles[i])
		}
	}
}

// StepCycles returns the accumulated cycles for step i.
func (p *StepProfiler) StepCycles(i int) uint64 { return p.cycles[i] }

// Reset clears every accumulator and histogram in place, keeping the
// registered metric closures valid for a pooled run.
func (p *StepProfiler) Reset() {
	clear(p.cycles)
	clear(p.uops)
	clear(p.calls)
	for _, h := range p.hists {
		h.Reset()
	}
}

// Register adds the profiler's metrics to reg under "step.<name>.*":
// cycles and uops counters plus the per-call cycle histogram.
func (p *StepProfiler) Register(reg *Registry) {
	for i, name := range p.names {
		i := i
		reg.Counter("step."+name+".cycles", func() uint64 { return p.cycles[i] })
		reg.Counter("step."+name+".uops", func() uint64 { return p.uops[i] })
		reg.Counter("step."+name+".calls", func() uint64 { return p.calls[i] })
		reg.Histogram("step."+name+".percall", p.hists[i])
	}
}
