package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// LintOpenMetrics validates a text exposition document against the subset
// of the OpenMetrics grammar this package emits, strictly enough to catch
// real encoder regressions:
//
//   - every sample line parses as <name>[{labels}] <value>;
//   - metric and label names match the exposition alphabet;
//   - every sample belongs to the family declared by the preceding # TYPE
//     line (samples of one family are contiguous), with the suffix its type
//     allows (counter: _total; gauge: none; histogram: _bucket/_sum/_count);
//   - no family is declared twice;
//   - counter and histogram sample values are non-negative;
//   - histogram buckets have strictly increasing le, nondecreasing
//     cumulative counts, end in le="+Inf", and agree with _count;
//   - the document ends with exactly one "# EOF" line.
//
// The scrape smoke test pipes live /v1/metrics output through this via
// scripts/promlint.
func LintOpenMetrics(doc []byte) error {
	lines := strings.Split(string(doc), "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		return fmt.Errorf("document must end with a single %q line", "# EOF")
	}
	lines = lines[:len(lines)-2]

	types := map[string]string{} // family -> counter|gauge|histogram
	var fam, famType string
	h := newHistCheck()
	closeFamily := func() error {
		if famType == "histogram" {
			if err := h.finish(fam); err != nil {
				return err
			}
		}
		return nil
	}

	for i, line := range lines {
		lineNo := i + 1
		switch {
		case line == "":
			return fmt.Errorf("line %d: blank line", lineNo)
		case line == "# EOF":
			return fmt.Errorf("line %d: %q before end of document", lineNo, line)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			if err := closeFamily(); err != nil {
				return err
			}
			types[name] = typ
			fam, famType = name, typ
			h = newHistCheck()
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("line %d: unknown comment %q", lineNo, line)
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if fam == "" {
				return fmt.Errorf("line %d: sample %q before any TYPE declaration", lineNo, name)
			}
			if err := checkSample(famType, fam, name, labels, value, h); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
	}
	return closeFamily()
}

// checkSample validates one sample against its family's type.
func checkSample(famType, fam, name, labels string, value float64, h *histCheck) error {
	switch famType {
	case "counter":
		if name != fam+"_total" {
			return fmt.Errorf("sample %q does not belong to counter family %q (want %s_total)", name, fam, fam)
		}
		if value < 0 {
			return fmt.Errorf("counter %q has negative value %g", name, value)
		}
	case "gauge":
		if name != fam {
			return fmt.Errorf("sample %q does not belong to gauge family %q", name, fam)
		}
	case "histogram":
		if value < 0 {
			return fmt.Errorf("histogram sample %q has negative value %g", name, value)
		}
		switch name {
		case fam + "_bucket":
			le, err := parseLE(labels)
			if err != nil {
				return fmt.Errorf("bucket of %q: %v", fam, err)
			}
			return h.bucket(fam, le, value)
		case fam + "_sum":
			h.sawSum = true
		case fam + "_count":
			h.sawCount = true
			h.count = value
		default:
			return fmt.Errorf("sample %q does not belong to histogram family %q", name, fam)
		}
	}
	return nil
}

// histCheck accumulates one histogram family's bucket series.
type histCheck struct {
	prevLE, prevCount float64
	infCount          float64
	buckets           int
	sawInf            bool
	sawSum, sawCount  bool
	count             float64
}

func newHistCheck() *histCheck {
	return &histCheck{prevLE: math.Inf(-1), prevCount: -1}
}

func (h *histCheck) bucket(fam string, le, count float64) error {
	if h.sawInf {
		return fmt.Errorf("family %q has buckets after le=\"+Inf\"", fam)
	}
	if le <= h.prevLE {
		return fmt.Errorf("family %q bucket le %g not increasing (previous %g)", fam, le, h.prevLE)
	}
	if count < h.prevCount {
		return fmt.Errorf("family %q bucket counts not monotone: %g after %g", fam, count, h.prevCount)
	}
	h.prevLE, h.prevCount = le, count
	h.buckets++
	if math.IsInf(le, 1) {
		h.sawInf = true
		h.infCount = count
	}
	return nil
}

func (h *histCheck) finish(fam string) error {
	if h.buckets == 0 {
		return fmt.Errorf("histogram family %q has no buckets", fam)
	}
	if !h.sawInf {
		return fmt.Errorf("histogram family %q is missing the le=\"+Inf\" bucket", fam)
	}
	if !h.sawSum || !h.sawCount {
		return fmt.Errorf("histogram family %q is missing _sum or _count", fam)
	}
	if h.count != h.infCount {
		return fmt.Errorf("histogram family %q: _count %g != +Inf bucket %g", fam, h.count, h.infCount)
	}
	return nil
}

// parseSample splits a sample line into name, raw label body (without
// braces, "" when absent) and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimPrefix(rest[j+1:], " ")
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", 0, fmt.Errorf("sample line %q has no value", line)
		}
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("invalid sample value %q", rest)
	}
	return name, labels, v, nil
}

// parseLE extracts the le label value from a bucket's label body.
func parseLE(labels string) (float64, error) {
	const pre = `le="`
	if !strings.HasPrefix(labels, pre) || !strings.HasSuffix(labels, `"`) {
		return 0, fmt.Errorf("bucket labels %q are not a single le", labels)
	}
	v := labels[len(pre) : len(labels)-1]
	if v == "+Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid le %q", v)
	}
	return f, nil
}

// validName reports whether s is a legal exposition metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
