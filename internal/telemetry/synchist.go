package telemetry

import (
	"sync"

	"mallacc/internal/stats"
)

// SyncHist is a mutex-guarded duration histogram for metrics fed from
// concurrent goroutines. The simulation registries keep using bare
// *stats.DurationHist — they are write-once, single-goroutine, and
// snapshotted only after a run finishes — but a live daemon (the simulation
// service) observes values from many workers while /v1/metrics snapshots
// race with the updates, so its histograms go through SyncHist.
type SyncHist struct {
	mu sync.Mutex
	h  *stats.DurationHist
}

// NewSyncHist returns an empty concurrent histogram.
func NewSyncHist() *SyncHist { return &SyncHist{h: stats.NewDurationHist()} }

// Observe records one value.
func (s *SyncHist) Observe(v uint64) {
	s.mu.Lock()
	s.h.Add(v)
	s.mu.Unlock()
}

// metric reads a consistent point-in-time summary under the lock.
func (s *SyncHist) metric(name string) Metric {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metric{Name: name, Kind: KindHistogram, Count: s.h.N(), Sum: s.h.TotalCycles()}
	m.Value = float64(s.h.N())
	if s.h.N() > 0 {
		m.Mean = s.h.MeanCycles()
		m.P50 = s.h.MedianCycles()
		m.P99 = s.h.PercentileCycles(99)
	}
	m.Buckets = cumulativeBuckets(s.h.Buckets(), s.h.N())
	return m
}

// SyncHistogram registers a concurrent histogram under name; the registry
// summarizes it under its lock at snapshot time.
func (r *Registry) SyncHistogram(name string, h *SyncHist) {
	root, pre := r.rootAndPrefix()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.checkFresh(pre + name)
	root.synchists[pre+name] = h
}
