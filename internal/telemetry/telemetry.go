// Package telemetry is the unified observability layer of the simulator.
// Every simulated component — the out-of-order core, the cache hierarchy,
// the malloc cache, the allocator tiers, the sampler — registers named
// metrics into one Registry, and every consumer (the experiment harness,
// the CLIs, the library facade) reads them back through one Snapshot/Delta
// surface keyed by dotted metric names (e.g. "mc.pop.hits", "l1d.misses",
// "pageheap.spans.split", "step.pushpop.cycles").
//
// The existing per-package stats structs remain the storage — they are
// cheap plain-field counters on simulation hot paths — and the registry
// reads them through source closures at snapshot time. The registry is
// therefore the single query surface; the structs are its backing store.
// Registration is write-once per run: components register at construction
// and the registry is never mutated during simulation, so snapshots are
// safe to take from any goroutine once a run has finished.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"mallacc/internal/stats"
)

// Ratio returns hits / (hits + misses), the canonical hit-rate helper every
// layer previously reimplemented. Zero traffic yields 0.
func Ratio(hits, misses uint64) float64 {
	t := hits + misses
	if t == 0 {
		return 0
	}
	return float64(hits) / float64(t)
}

// Rate returns num / den, guarding the empty denominator. It covers the
// non-hit/miss ratios (IPC = uops/cycles, miss rate = misses/accesses).
func Rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Kind classifies a metric.
type Kind string

const (
	// KindCounter is a monotonically nondecreasing event count.
	KindCounter Kind = "counter"
	// KindGauge is an instantaneous value (rates, occupancies).
	KindGauge Kind = "gauge"
	// KindHistogram is a log-bucketed distribution of per-event values.
	KindHistogram Kind = "histogram"
)

// Metric is one named value of a Snapshot.
type Metric struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Value holds the counter or gauge reading (counters are exact until
	// 2^53, far beyond any simulated run).
	Value float64 `json:"value"`
	// Histogram summary fields (KindHistogram only).
	Count uint64  `json:"count,omitempty"`
	Sum   uint64  `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`

	// Exposition-only fields, excluded from the compact JSON form so the
	// pinned snapshot digests stay byte-identical: Help is the registered
	// description, Buckets the cumulative distribution (KindHistogram only,
	// always ending in the +Inf bucket).
	Help    string       `json:"-"`
	Buckets []HistBucket `json:"-"`
}

// HistBucket is one cumulative histogram bucket for text exposition: Count
// is the number of observations with value <= LE. LE is +Inf on the final
// bucket.
type HistBucket struct {
	LE    float64
	Count uint64
}

// cumulativeBuckets converts the non-cumulative stats buckets into the
// cumulative form exposition needs. Durations are integers, so the
// inclusive upper bound of a [Lo, Hi) range is Hi-1. The +Inf bucket always
// closes the list, carrying the total count.
func cumulativeBuckets(bs []stats.Bucket, n uint64) []HistBucket {
	out := make([]HistBucket, 0, len(bs)+1)
	var acc uint64
	for _, b := range bs {
		acc += b.Count
		out = append(out, HistBucket{LE: float64(b.Hi - 1), Count: acc})
	}
	return append(out, HistBucket{LE: math.Inf(1), Count: n})
}

// Snapshot is an immutable point-in-time reading of a Registry, sorted by
// metric name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get returns the metric with the given name.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Value returns the named counter/gauge value (0 when absent).
func (s Snapshot) Value(name string) float64 {
	m, _ := s.Get(name)
	return m.Value
}

// Delta returns s - prev: counters and histogram counts/sums subtract
// (clamped at zero), gauges keep their current reading. Metrics absent from
// prev pass through unchanged.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	copy(out.Metrics, s.Metrics)
	for i := range out.Metrics {
		m := &out.Metrics[i]
		p, ok := prev.Get(m.Name)
		if !ok || m.Kind == KindGauge {
			continue
		}
		if m.Value >= p.Value {
			m.Value -= p.Value
		} else {
			m.Value = 0
		}
		if m.Kind == KindHistogram {
			if m.Count >= p.Count {
				m.Count -= p.Count
			} else {
				m.Count = 0
			}
			if m.Sum >= p.Sum {
				m.Sum -= p.Sum
			} else {
				m.Sum = 0
			}
			if m.Count > 0 {
				m.Mean = float64(m.Sum) / float64(m.Count)
			} else {
				m.Mean = 0
			}
			// Percentiles are not subtractable; the delta keeps the
			// current reading.
		}
	}
	return out
}

// MarshalJSON renders the snapshot as one object keyed by metric name:
// counters and gauges as plain numbers, histograms as summary objects.
// This is the compact machine-readable form the exporters and
// results/metrics/baseline.json use.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	out := make(map[string]any, len(s.Metrics))
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindHistogram:
			out[m.Name] = map[string]any{
				"count": m.Count, "sum": m.Sum,
				"mean": jsonRound(m.Mean), "p50": jsonRound(m.P50), "p99": jsonRound(m.P99),
			}
		case KindCounter:
			out[m.Name] = uint64(m.Value)
		default:
			out[m.Name] = jsonRound(m.Value)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the compact map form MarshalJSON emits, restoring a
// sorted Metrics slice, so snapshots embedded in cached reports survive a
// serialize/deserialize round trip byte-identically. Plain numbers cannot
// distinguish counters from gauges; a non-negative integer is classified as
// a counter, anything else as a gauge — both re-marshal to the same bytes.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	ms := make([]Metric, 0, len(raw))
	for name, v := range raw {
		m := Metric{Name: name}
		if len(v) > 0 && v[0] == '{' {
			var h struct {
				Count uint64  `json:"count"`
				Sum   uint64  `json:"sum"`
				Mean  float64 `json:"mean"`
				P50   float64 `json:"p50"`
				P99   float64 `json:"p99"`
			}
			if err := json.Unmarshal(v, &h); err != nil {
				return err
			}
			m.Kind = KindHistogram
			m.Count, m.Sum, m.Mean, m.P50, m.P99 = h.Count, h.Sum, h.Mean, h.P50, h.P99
			m.Value = float64(h.Count)
		} else {
			var num json.Number
			if err := json.Unmarshal(v, &num); err != nil {
				return err
			}
			f, err := num.Float64()
			if err != nil {
				return err
			}
			m.Value = f
			if isCounterLiteral(num.String()) {
				m.Kind = KindCounter
			} else {
				m.Kind = KindGauge
			}
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	s.Metrics = ms
	return nil
}

// isCounterLiteral reports whether a JSON number literal is a non-negative
// integer (the only form counter values marshal to).
func isCounterLiteral(lit string) bool {
	if lit == "" || lit[0] == '-' {
		return false
	}
	for i := 0; i < len(lit); i++ {
		switch lit[i] {
		case '.', 'e', 'E':
			return false
		}
	}
	return true
}

// jsonRound trims float noise to 6 decimal places so snapshots diff cleanly
// across toolchains.
func jsonRound(v float64) float64 {
	const scale = 1e6
	if v >= 0 {
		return float64(int64(v*scale+0.5)) / scale
	}
	return -float64(int64(-v*scale+0.5)) / scale
}

// Registry holds the registered metric sources of one simulated system.
// A Registry obtained from Sub is a prefixed view: it stores nothing itself
// and forwards every registration to the root under "<prefix>name".
type Registry struct {
	mu        sync.Mutex
	counters  map[string]func() uint64
	gauges    map[string]func() float64
	hists     map[string]*stats.DurationHist
	synchists map[string]*SyncHist
	helps     map[string]string

	parent *Registry // non-nil on prefixed views
	prefix string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]func() uint64{},
		gauges:    map[string]func() float64{},
		hists:     map[string]*stats.DurationHist{},
		synchists: map[string]*SyncHist{},
		helps:     map[string]string{},
	}
}

// Describe attaches a help string to a metric name. It may be called before
// or after the metric registers (metadata and sources often live in
// different components); snapshots join the two by name. Prefixed views
// apply their prefix, so component RegisterMetrics methods can describe
// their own metrics unchanged.
func (r *Registry) Describe(name, help string) {
	root, pre := r.rootAndPrefix()
	root.mu.Lock()
	defer root.mu.Unlock()
	if root.helps == nil {
		root.helps = map[string]string{}
	}
	root.helps[pre+name] = help
}

// Sub returns a prefixed view of r: every metric registered through the
// view lands in the root registry under "<prefix>name". Views nest (the
// prefixes concatenate) and share the root's mutex and duplicate check, so
// per-core registrations like reg.Sub("core3.") compose with component
// RegisterMetrics methods unchanged. Snapshot and Len on a view read the
// whole root registry.
func (r *Registry) Sub(prefix string) *Registry {
	root, pre := r.rootAndPrefix()
	return &Registry{parent: root, prefix: pre + prefix}
}

// rootAndPrefix resolves a possibly-prefixed view to its storage registry
// and accumulated name prefix.
func (r *Registry) rootAndPrefix() (*Registry, string) {
	if r.parent != nil {
		return r.parent, r.prefix
	}
	return r, ""
}

// Counter registers a counter source under name. Registering a duplicate
// name panics: dotted names are the registry's only keyspace, and silent
// shadowing would corrupt every downstream report.
func (r *Registry) Counter(name string, fn func() uint64) {
	root, pre := r.rootAndPrefix()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.checkFresh(pre + name)
	root.counters[pre+name] = fn
}

// Gauge registers a gauge source under name.
func (r *Registry) Gauge(name string, fn func() float64) {
	root, pre := r.rootAndPrefix()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.checkFresh(pre + name)
	root.gauges[pre+name] = fn
}

// Histogram registers a histogram under name. The registry reads it at
// snapshot time; the caller keeps feeding it.
func (r *Registry) Histogram(name string, h *stats.DurationHist) {
	root, pre := r.rootAndPrefix()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.checkFresh(pre + name)
	root.hists[pre+name] = h
}

func (r *Registry) checkFresh(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	if _, ok := r.synchists[name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r, _ = r.rootAndPrefix()
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.hists) + len(r.synchists)
}

// Snapshot reads every registered source and returns the sorted result.
func (r *Registry) Snapshot() Snapshot {
	r, _ = r.rootAndPrefix()
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.synchists))
	for name, h := range r.synchists {
		ms = append(ms, h.metric(name))
	}
	for name, fn := range r.counters {
		ms = append(ms, Metric{Name: name, Kind: KindCounter, Value: float64(fn())})
	}
	for name, fn := range r.gauges {
		ms = append(ms, Metric{Name: name, Kind: KindGauge, Value: fn()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: KindHistogram, Count: h.N(), Sum: h.TotalCycles()}
		m.Value = float64(h.N())
		if h.N() > 0 {
			m.Mean = h.MeanCycles()
			m.P50 = h.MedianCycles()
			m.P99 = h.PercentileCycles(99)
		}
		m.Buckets = cumulativeBuckets(h.Buckets(), h.N())
		ms = append(ms, m)
	}
	for i := range ms {
		ms[i].Help = r.helps[ms[i].Name]
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Snapshot{Metrics: ms}
}
