package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"
)

func TestRatioAndRate(t *testing.T) {
	if Ratio(0, 0) != 0 {
		t.Error("Ratio(0,0) != 0")
	}
	if got := Ratio(3, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Ratio(3,1) = %v", got)
	}
	if Rate(5, 0) != 0 {
		t.Error("Rate(x,0) != 0")
	}
	if got := Rate(6, 4); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Rate(6,4) = %v", got)
	}
}

func TestRegistrySnapshotSortedAndTyped(t *testing.T) {
	reg := NewRegistry()
	var hits uint64 = 7
	reg.Counter("mc.pop.hits", func() uint64 { return hits })
	reg.Gauge("mc.pop.hit_rate", func() float64 { return 0.5 })
	s := reg.Snapshot()
	if len(s.Metrics) != 2 {
		t.Fatalf("got %d metrics", len(s.Metrics))
	}
	if !sort.SliceIsSorted(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name }) {
		t.Error("snapshot not sorted")
	}
	m, ok := s.Get("mc.pop.hits")
	if !ok || m.Kind != KindCounter || m.Value != 7 {
		t.Errorf("counter wrong: %+v ok=%v", m, ok)
	}
	if v := s.Value("mc.pop.hit_rate"); v != 0.5 {
		t.Errorf("gauge = %v", v)
	}
	// Sources are live: the next snapshot sees the new value.
	hits = 9
	if v := reg.Snapshot().Value("mc.pop.hits"); v != 9 {
		t.Errorf("live source read %v", v)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("ghost metric")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Gauge("a", func() float64 { return 0 })
}

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	var n uint64
	reg.Counter("c", func() uint64 { return n })
	reg.Gauge("g", func() float64 { return float64(n) })
	n = 10
	before := reg.Snapshot()
	n = 25
	after := reg.Snapshot()
	d := after.Delta(before)
	if v := d.Value("c"); v != 15 {
		t.Errorf("counter delta = %v", v)
	}
	if v := d.Value("g"); v != 25 {
		t.Errorf("gauge delta should keep the current reading, got %v", v)
	}
}

func TestStepProfiler(t *testing.T) {
	p := NewStepProfiler([]string{"other", "sizeclass", "pushpop"})
	p.ObserveCall([]uint64{5, 3, 0}, []uint64{4, 2, 0})
	p.ObserveCall([]uint64{1, 0, 8}, []uint64{1, 0, 3})
	reg := NewRegistry()
	p.Register(reg)
	s := reg.Snapshot()
	if v := s.Value("step.sizeclass.cycles"); v != 3 {
		t.Errorf("sizeclass cycles = %v", v)
	}
	if v := s.Value("step.pushpop.cycles"); v != 8 {
		t.Errorf("pushpop cycles = %v", v)
	}
	if v := s.Value("step.other.uops"); v != 5 {
		t.Errorf("other uops = %v", v)
	}
	if v := s.Value("step.sizeclass.calls"); v != 1 {
		t.Errorf("sizeclass calls = %v (zero-cycle calls must not count)", v)
	}
	m, ok := s.Get("step.pushpop.percall")
	if !ok || m.Kind != KindHistogram || m.Count != 1 || m.Sum != 8 {
		t.Errorf("pushpop percall hist: %+v ok=%v", m, ok)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	p := NewStepProfiler([]string{"pushpop"})
	p.ObserveCall([]uint64{4}, []uint64{2})
	reg := NewRegistry()
	reg.Counter("heap.mallocs", func() uint64 { return 42 })
	reg.Gauge("cpu.ipc", func() float64 { return 1.25 })
	p.Register(reg)
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("snapshot JSON not an object: %v", err)
	}
	if m["heap.mallocs"] != float64(42) {
		t.Errorf("counter JSON = %v", m["heap.mallocs"])
	}
	if m["cpu.ipc"] != 1.25 {
		t.Errorf("gauge JSON = %v", m["cpu.ipc"])
	}
	h, ok := m["step.pushpop.percall"].(map[string]any)
	if !ok || h["count"] != float64(1) || h["sum"] != float64(4) {
		t.Errorf("hist JSON = %v", m["step.pushpop.percall"])
	}
}

// TestRegistryConcurrentSnapshots exercises the mutex under -race: multiple
// goroutines snapshotting while another registers.
func TestRegistryConcurrentSnapshots(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("base", func() uint64 { return 1 })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			reg.Gauge(string(rune('a'+i%26))+string(rune('0'+i/26)), func() float64 { return 0 })
		}
	}()
	wg.Wait()
	if reg.Len() < 51 {
		t.Errorf("Len = %d", reg.Len())
	}
}

func TestRegistrySub(t *testing.T) {
	reg := NewRegistry()
	sub := reg.Sub("core0.")
	sub.Counter("cpu.cycles", func() uint64 { return 11 })
	nested := sub.Sub("l1d.")
	nested.Gauge("miss_rate", func() float64 { return 0.25 })
	reg.Counter("engine.epochs", func() uint64 { return 3 })

	s := reg.Snapshot()
	if got := s.Value("core0.cpu.cycles"); got != 11 {
		t.Errorf("core0.cpu.cycles = %v, want 11", got)
	}
	if got := s.Value("core0.l1d.miss_rate"); got != 0.25 {
		t.Errorf("core0.l1d.miss_rate = %v, want 0.25", got)
	}
	if got := s.Value("engine.epochs"); got != 3 {
		t.Errorf("engine.epochs = %v, want 3", got)
	}
	// Views read the whole root registry.
	if sub.Len() != reg.Len() || reg.Len() != 3 {
		t.Errorf("Len: sub=%d root=%d, want 3", sub.Len(), reg.Len())
	}
	if len(sub.Snapshot().Metrics) != 3 {
		t.Errorf("sub snapshot has %d metrics, want 3", len(sub.Snapshot().Metrics))
	}

	// Duplicate detection spans views: the same full name panics.
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration through view did not panic")
		}
	}()
	reg.Counter("core0.cpu.cycles", func() uint64 { return 0 })
}
