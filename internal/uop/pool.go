package uop

import "sync"

// Micro-op slab pooling. An Emitter's backing array grows whenever a call
// emits more ops than any call before it (span carving, cache flush loops,
// lock convoys), and every simulation run builds fresh heaps — and with
// them fresh emitters. Without pooling each growth step and each run
// allocates and abandons a slab, which the allocation profile shows as the
// second-largest source of garbage in a full experiment sweep. The pools
// below recycle slabs across growths, runs and goroutines; traces hold no
// pointers, so recycled slabs need no zeroing (every op is overwritten
// before it is read).

// slabMinShift is log2 of the smallest pooled slab (128 ops, the typical
// fast-path trace bound).
const slabMinShift = 7

// slabMaxShift is log2 of the largest pooled slab; larger requests fall
// back to the Go allocator (they effectively never occur).
const slabMaxShift = 15

var slabPools [slabMaxShift - slabMinShift + 1]sync.Pool

// slabClass returns the pool index whose slabs hold at least n ops, or -1
// when n exceeds the largest pooled size.
func slabClass(n int) int {
	for i := range slabPools {
		if n <= 1<<(slabMinShift+i) {
			return i
		}
	}
	return -1
}

// getSlab returns a zero-length micro-op slab with capacity at least n.
func getSlab(n int) []UOp {
	cl := slabClass(n)
	if cl < 0 {
		return make([]UOp, 0, n)
	}
	if s, ok := slabPools[cl].Get().(*[]UOp); ok {
		return (*s)[:0]
	}
	return make([]UOp, 0, 1<<(slabMinShift+cl))
}

// putSlab returns a slab to its pool. Slabs of non-pooled capacities are
// left to the garbage collector.
func putSlab(s []UOp) {
	c := cap(s)
	if c == 0 {
		return
	}
	cl := slabClass(c)
	if cl < 0 || c != 1<<(slabMinShift+cl) {
		return
	}
	s = s[:0]
	slabPools[cl].Put(&s)
}
