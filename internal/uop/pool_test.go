package uop

import "testing"

func TestSlabClass(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {128, 0}, {129, 1}, {256, 1}, {257, 2},
		{1 << 15, slabMaxShift - slabMinShift}, {1<<15 + 1, -1},
	}
	for _, c := range cases {
		if got := slabClass(c.n); got != c.class {
			t.Errorf("slabClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestPutSlabRejectsOddCapacities(t *testing.T) {
	// Non-power-of-two and oversized slabs must not enter the pools, or a
	// later getSlab would return less capacity than its class promises.
	putSlab(make([]UOp, 0, 100))
	putSlab(make([]UOp, 0, 1<<16))
	putSlab(nil)
	for i := 0; i < 64; i++ {
		s := getSlab(100)
		if cap(s) < 100 {
			t.Fatalf("getSlab(100) returned cap %d", cap(s))
		}
		putSlab(s)
	}
}

// TestEmitterSteadyStateAllocs pins the pooling contract: once an emitter
// has grown to its working-set size, re-emitting a trace allocates nothing.
func TestEmitterSteadyStateAllocs(t *testing.T) {
	e := NewEmitter()
	defer e.Recycle()
	emit := func() {
		e.Reset()
		for i := 0; i < 200; i++ { // crosses the initial 128-op slab
			e.ALU(NoDep, NoDep)
		}
	}
	emit()
	if allocs := testing.AllocsPerRun(500, emit); allocs != 0 {
		t.Fatalf("steady-state emit allocates %.1f times, want 0", allocs)
	}
}

func TestRecycleThenReuse(t *testing.T) {
	e := NewEmitter()
	for i := 0; i < 300; i++ {
		e.ALU(NoDep, NoDep)
	}
	e.Recycle()
	// A recycled emitter must come back empty and usable.
	e2 := NewEmitter()
	defer e2.Recycle()
	if e2.Len() != 0 {
		t.Fatalf("fresh emitter has %d ops", e2.Len())
	}
	v := e2.ALU(NoDep, NoDep)
	if v != 0 || e2.Len() != 1 {
		t.Fatalf("recycled slab not reset: val=%d len=%d", v, e2.Len())
	}
}
