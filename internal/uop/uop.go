// Package uop defines the micro-operation trace format that connects the
// functional allocator model to the cycle-level CPU timing model.
//
// The reproduced TCMalloc executes every allocator operation twice over, in
// one pass: it performs the operation functionally against the simulated
// address space, and simultaneously emits the micro-ops an x86 core would
// execute for it — loads and stores with their simulated addresses, ALU
// ops, branches with stable site IDs for the branch predictor, and the five
// Mallacc instructions. Register dataflow is captured as explicit
// dependency edges between micro-ops, so the out-of-order model sees the
// same dependence graph the paper's Figure 7 analyzes (e.g. the dependent
// load-load-store chain of a free-list pop).
//
// Every micro-op carries a Step tag identifying which fast-path component
// it belongs to (size-class computation, sampling, free-list push/pop, ...).
// The paper's limit study "simply ignores" those instructions in timing
// simulation; the CPU model reproduces that by treating drop-tagged ops as
// zero-latency.
package uop

// Kind enumerates micro-op types. Latencies and port bindings are assigned
// by the CPU model.
type Kind uint8

const (
	// ALU is a simple integer operation (add, shift, compare): 1 cycle.
	ALU Kind = iota
	// IMul is an integer multiply: 3 cycles.
	IMul
	// Load reads 8 bytes from the simulated address space through the
	// cache hierarchy.
	Load
	// Store writes 8 bytes; it completes without waiting for the memory
	// system (senior store queue semantics).
	Store
	// Branch is a conditional branch resolved at execute; mispredictions
	// redirect fetch.
	Branch
	// SWPrefetch is a conventional software prefetch into L1.
	SWPrefetch
	// McSzLookup is Mallacc's size-class lookup (paper Fig. 9): requested
	// size in, (size class, allocation size) out, ZF set on hit.
	McSzLookup
	// McSzUpdate inserts or widens a size-class mapping after a software
	// fallback (paper Fig. 9).
	McSzUpdate
	// McHdPop pops the cached free-list head for a size class (Fig. 11).
	McHdPop
	// McHdPush pushes a freed pointer as the new cached head (Fig. 11).
	McHdPush
	// McNxtPrefetch asynchronously refills the cached Next (or Head) slot;
	// it commits like a store but blocks its malloc-cache entry until the
	// data returns from the cache hierarchy (Fig. 11, Sec. 4.1).
	McNxtPrefetch
	// Nop occupies no resources; used as a dependence join point.
	Nop

	numKinds
)

var kindNames = [numKinds]string{
	"alu", "imul", "load", "store", "branch", "swprefetch",
	"mcszlookup", "mcszupdate", "mchdpop", "mchdpush", "mcnxtprefetch", "nop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsMallacc reports whether the op is one of the five accelerator
// instructions.
func (k Kind) IsMallacc() bool {
	return k >= McSzLookup && k <= McNxtPrefetch
}

// IsMemory reports whether the op accesses the cache hierarchy.
func (k Kind) IsMemory() bool {
	return k == Load || k == Store || k == SWPrefetch || k == McNxtPrefetch
}

// Step tags a micro-op with the fast-path component it implements
// (Sec. 3.3 of the paper). The limit study and the Figure 4 ablations
// remove steps from timing by tag.
type Step uint8

const (
	// StepOther covers addressing calculations, metadata updates and
	// everything the paper chooses not to accelerate.
	StepOther Step = iota
	// StepSizeClass is the size-class computation (Fig. 5).
	StepSizeClass
	// StepSampling is the sampling counter check.
	StepSampling
	// StepPushPop is the free-list head push/pop chain (Fig. 7).
	StepPushPop
	// StepCallOverhead is function prologue/epilogue work.
	StepCallOverhead

	NumSteps
)

var stepNames = [NumSteps]string{"other", "sizeclass", "sampling", "pushpop", "callovh"}

func (s Step) String() string {
	if int(s) < len(stepNames) {
		return stepNames[s]
	}
	return "unknown"
}

// Val identifies the micro-op whose result a later op consumes. NoDep means
// the operand is immediately available (immediate or long-ago register).
type Val int32

// NoDep marks an absent dependency.
const NoDep Val = -1

// UOp is one micro-operation of a call trace. Fields are ordered widest
// first so the struct packs into 32 bytes instead of the 40 a declaration-
// order layout costs: every op is copied through Emitter.push and re-read by
// the timing model's scheduling loop, so op size is directly hot-path memory
// traffic.
type UOp struct {
	// Addr is the simulated byte address for memory ops.
	Addr uint64
	// Dep1, Dep2 are register-dataflow dependencies (indices into the
	// trace), or NoDep.
	Dep1, Dep2 Val
	// Site is a stable branch-site identifier; the branch predictor is
	// indexed by it (a stand-in for the static PC).
	Site uint32
	// MCEntry is the malloc-cache entry this Mallacc op touched, or -1.
	// Entry blocking on outstanding prefetch is enforced per entry.
	MCEntry int16
	Kind    Kind
	Step    Step
	// Taken is the actual branch outcome.
	Taken bool
	// MCHit records whether a Mallacc lookup/pop hit (determined
	// functionally); a miss clears ZF and software falls back.
	MCHit bool
	// LatOverride, if nonzero, replaces the kind's default execution
	// latency (e.g. +1 cycle for the index-computation mode of
	// mcszlookup).
	LatOverride uint8
}

// Trace is the micro-op sequence of a single allocator call, in program
// order.
type Trace struct {
	Ops []UOp
}

// CountByStep returns how many ops carry each step tag.
func (t *Trace) CountByStep() [NumSteps]int {
	var out [NumSteps]int
	for i := range t.Ops {
		out[t.Ops[i].Step]++
	}
	return out
}

// Emitter builds call traces. The allocator holds one Emitter and resets it
// at the start of every malloc/free; helper methods return the Val of the
// op they append so callers can wire dataflow.
type Emitter struct {
	ops []UOp
	// lastMC implements the architectural ordering of the three linked-
	// list instructions ("implicit read-write register dependency through
	// an architecturally-invisible register", Sec. 4.1): each Mallacc list
	// op depends on the previous one.
	lastMC Val
	// step is the currently active tag.
	step Step
	// disabled suppresses emission entirely (pure-functional execution,
	// used by tests and warmup).
	disabled bool
}

// NewEmitter returns an Emitter with capacity for typical fast-path
// traces. The backing slab comes from a shared pool; call Recycle when
// the emitter is permanently done to return it.
func NewEmitter() *Emitter {
	return &Emitter{ops: getSlab(128), lastMC: NoDep}
}

// Reset discards the current trace and starts a new call.
func (e *Emitter) Reset() {
	e.ops = e.ops[:0]
	e.lastMC = NoDep
	e.step = StepOther
}

// SetDisabled turns emission off or on. While disabled, all emit methods
// return NoDep and record nothing.
func (e *Emitter) SetDisabled(d bool) { e.disabled = d }

// Disabled reports whether emission is off.
func (e *Emitter) Disabled() bool { return e.disabled }

// Step sets the active tag for subsequently emitted ops and returns the
// previous tag so callers can restore it.
func (e *Emitter) Step(s Step) Step {
	prev := e.step
	e.step = s
	return prev
}

// Len returns the number of ops emitted for the current call.
func (e *Emitter) Len() int { return len(e.ops) }

// Trace returns the current call's trace. The backing slice is reused after
// Reset; callers must consume it before the next call.
func (e *Emitter) Trace() Trace { return Trace{Ops: e.ops} }

// Recycle returns the emitter's slab to the shared pool. The emitter (and
// any Trace it handed out) must not be used afterwards; it is meant for
// the end of a simulation run, when the owning heap is discarded.
func (e *Emitter) Recycle() {
	putSlab(e.ops)
	e.ops = nil
}

// push appends one op. It must stay within the compiler's inlining budget:
// every emitted micro-op funnels through here, and the allocator fast path
// emits tens of ops per call — an out-of-line push costs a call frame and a
// 32-byte argument copy per op (a measured ~35% on the malloc/free
// microbenchmark). That is why growth uses the append builtin rather than
// an explicit grow-through-the-pool branch: a call to any helper charges
// the inliner more than the whole body is allowed to cost. Growth is a
// rare event (it only fires when a call emits more ops than any call
// before it), so letting the outgrown slab go to the garbage collector
// forfeits almost nothing — the pool's win is recycling slabs across runs
// and emitters via NewEmitter/Recycle, which is untouched. append's
// doubling keeps power-of-two capacities, so grown slabs still land back
// in a pool class on Recycle.
func (e *Emitter) push(op UOp) Val {
	op.Step = e.step
	if op.MCEntry == 0 && !op.Kind.IsMallacc() {
		op.MCEntry = -1
	}
	e.ops = append(e.ops, op)
	return Val(len(e.ops) - 1)
}

// ALU emits a 1-cycle integer op depending on up to two producers.
func (e *Emitter) ALU(dep1, dep2 Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: ALU, Dep1: dep1, Dep2: dep2, MCEntry: -1})
}

// ALUWithLat emits an integer op with an explicit latency; used to model
// serializing operations with known costs (atomic RMWs for locks, the
// syscall entry/exit of an OS memory request) without inventing new kinds.
func (e *Emitter) ALUWithLat(lat uint8, dep1, dep2 Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: ALU, Dep1: dep1, Dep2: dep2, MCEntry: -1, LatOverride: lat})
}

// ALUChain emits n serially dependent ALU ops seeded by dep and returns the
// last one; it models short address or flag computations.
func (e *Emitter) ALUChain(n int, dep Val) Val {
	v := dep
	for i := 0; i < n; i++ {
		v = e.ALU(v, NoDep)
	}
	return v
}

// Stall emits a serially dependent chain of fixed-latency ALU ops totalling
// cycles, seeded by dep, and returns the last op. LatOverride is a uint8, so
// long waits — a contended lock spinning until the holder releases it — are
// modeled as a chain of maximal-latency ops plus a remainder.
func (e *Emitter) Stall(cycles uint64, dep Val) Val {
	if e.disabled || cycles == 0 {
		return dep
	}
	v := dep
	for cycles > 0 {
		lat := uint64(255)
		if cycles < lat {
			lat = cycles
		}
		v = e.ALUWithLat(uint8(lat), v, NoDep)
		cycles -= lat
	}
	return v
}

// IMul emits a 3-cycle multiply.
func (e *Emitter) IMul(dep1, dep2 Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: IMul, Dep1: dep1, Dep2: dep2, MCEntry: -1})
}

// Load emits a load of the word at addr whose address depends on addrDep.
func (e *Emitter) Load(addr uint64, addrDep Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: Load, Addr: addr, Dep1: addrDep, Dep2: NoDep, MCEntry: -1})
}

// Store emits a store to addr with the given address and data dependencies.
func (e *Emitter) Store(addr uint64, addrDep, dataDep Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: Store, Addr: addr, Dep1: addrDep, Dep2: dataDep, MCEntry: -1})
}

// Branch emits a conditional branch at the given site with the actual
// outcome taken, conditioned on dep (typically a compare or a Mallacc op
// that sets ZF).
func (e *Emitter) Branch(site uint32, taken bool, dep Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: Branch, Site: site, Taken: taken, Dep1: dep, Dep2: NoDep, MCEntry: -1})
}

// SWPrefetch emits a software prefetch of addr.
func (e *Emitter) SWPrefetch(addr uint64, addrDep Val) Val {
	if e.disabled {
		return NoDep
	}
	return e.push(UOp{Kind: SWPrefetch, Addr: addr, Dep1: addrDep, Dep2: NoDep, MCEntry: -1})
}

// Mallacc emits one of the five accelerator instructions. entry is the
// malloc-cache entry touched (-1 if none, e.g. a missing lookup), hit is
// the functional outcome, addr is the prefetch target for McNxtPrefetch,
// and latOverride optionally replaces the default latency.
func (e *Emitter) Mallacc(kind Kind, entry int, hit bool, addr uint64, dep Val, latOverride uint8) Val {
	if e.disabled {
		return NoDep
	}
	if !kind.IsMallacc() {
		panic("uop: Mallacc called with non-accelerator kind " + kind.String())
	}
	op := UOp{Kind: kind, Addr: addr, Dep1: dep, Dep2: NoDep, MCEntry: int16(entry), MCHit: hit, LatOverride: latOverride}
	// Order the linked-list instructions among themselves.
	if kind == McHdPop || kind == McHdPush || kind == McNxtPrefetch {
		op.Dep2 = e.lastMC
	}
	v := e.push(op)
	if kind == McHdPop || kind == McHdPush || kind == McNxtPrefetch {
		e.lastMC = v
	}
	return v
}
