package uop

import "testing"

func TestEmitterDependencyWiring(t *testing.T) {
	e := NewEmitter()
	e.Reset()
	a := e.ALU(NoDep, NoDep)
	l := e.Load(0x1000, a)
	s := e.Store(0x2000, l, a)
	tr := e.Trace()
	if len(tr.Ops) != 3 {
		t.Fatalf("emitted %d ops", len(tr.Ops))
	}
	if tr.Ops[l].Dep1 != a {
		t.Errorf("load addr dep = %d, want %d", tr.Ops[l].Dep1, a)
	}
	if tr.Ops[s].Dep1 != l || tr.Ops[s].Dep2 != a {
		t.Errorf("store deps = %d,%d", tr.Ops[s].Dep1, tr.Ops[s].Dep2)
	}
}

func TestMallaccOrderingChain(t *testing.T) {
	// The three linked-list instructions must be ordered among themselves
	// via the architecturally invisible register (Sec. 4.1).
	e := NewEmitter()
	e.Reset()
	p1 := e.Mallacc(McHdPop, 0, true, 0, NoDep, 0)
	pf := e.Mallacc(McNxtPrefetch, 0, true, 0x3000, NoDep, 0)
	p2 := e.Mallacc(McHdPush, 0, true, 0, NoDep, 0)
	tr := e.Trace()
	if tr.Ops[pf].Dep2 != p1 {
		t.Errorf("prefetch not ordered after pop: dep2=%d", tr.Ops[pf].Dep2)
	}
	if tr.Ops[p2].Dep2 != pf {
		t.Errorf("push not ordered after prefetch: dep2=%d", tr.Ops[p2].Dep2)
	}
	// mcszlookup/update do not participate in the list ordering.
	e.Reset()
	e.Mallacc(McSzLookup, 0, true, 0, NoDep, 0)
	pop := e.Mallacc(McHdPop, 0, true, 0, NoDep, 0)
	if e.Trace().Ops[pop].Dep2 != NoDep {
		t.Error("pop should not depend on lookup through the list ordering")
	}
}

func TestMallaccRejectsWrongKind(t *testing.T) {
	e := NewEmitter()
	defer func() {
		if recover() == nil {
			t.Fatal("Mallacc(ALU) did not panic")
		}
	}()
	e.Mallacc(ALU, 0, false, 0, NoDep, 0)
}

func TestStepTaggingAndCount(t *testing.T) {
	e := NewEmitter()
	e.Reset()
	e.Step(StepSizeClass)
	e.ALU(NoDep, NoDep)
	e.Load(0x10, NoDep)
	prev := e.Step(StepPushPop)
	if prev != StepSizeClass {
		t.Errorf("Step returned %v, want sizeclass", prev)
	}
	e.Store(0x20, NoDep, NoDep)
	e.Step(StepOther)
	e.Branch(1, true, NoDep)
	tr := e.Trace()
	counts := tr.CountByStep()
	if counts[StepSizeClass] != 2 || counts[StepPushPop] != 1 || counts[StepOther] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDisabledEmitsNothing(t *testing.T) {
	e := NewEmitter()
	e.Reset()
	e.SetDisabled(true)
	if v := e.ALU(NoDep, NoDep); v != NoDep {
		t.Errorf("disabled ALU returned %d", v)
	}
	e.Load(1<<12, NoDep)
	e.Mallacc(McHdPop, 0, true, 0, NoDep, 0)
	if e.Len() != 0 {
		t.Fatalf("disabled emitter recorded %d ops", e.Len())
	}
	e.SetDisabled(false)
	e.ALU(NoDep, NoDep)
	if e.Len() != 1 {
		t.Fatal("re-enabled emitter did not record")
	}
}

func TestALUChain(t *testing.T) {
	e := NewEmitter()
	e.Reset()
	seed := e.ALU(NoDep, NoDep)
	last := e.ALUChain(3, seed)
	tr := e.Trace()
	if len(tr.Ops) != 4 {
		t.Fatalf("chain emitted %d ops", len(tr.Ops))
	}
	// Each chain op depends on the previous.
	for i := 1; i < 4; i++ {
		if tr.Ops[i].Dep1 != Val(i-1) {
			t.Errorf("chain op %d dep %d", i, tr.Ops[i].Dep1)
		}
	}
	if last != 3 {
		t.Errorf("last = %d", last)
	}
}

func TestKindPredicates(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		wantMallacc := k >= McSzLookup && k <= McNxtPrefetch
		if k.IsMallacc() != wantMallacc {
			t.Errorf("%v.IsMallacc() = %v", k, k.IsMallacc())
		}
	}
	for _, k := range []Kind{Load, Store, SWPrefetch, McNxtPrefetch} {
		if !k.IsMemory() {
			t.Errorf("%v should be memory", k)
		}
	}
	for _, k := range []Kind{ALU, Branch, McHdPop, Nop} {
		if k.IsMemory() {
			t.Errorf("%v should not be memory", k)
		}
	}
	if ALU.String() != "alu" || McNxtPrefetch.String() != "mcnxtprefetch" {
		t.Error("kind names wrong")
	}
}

func TestResetClearsState(t *testing.T) {
	e := NewEmitter()
	e.Reset()
	e.Mallacc(McHdPop, 0, true, 0, NoDep, 0)
	e.Reset()
	pf := e.Mallacc(McNxtPrefetch, 0, true, 0x30, NoDep, 0)
	if e.Trace().Ops[pf].Dep2 != NoDep {
		t.Error("Mallacc ordering leaked across Reset")
	}
}
