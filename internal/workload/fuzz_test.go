package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace checks that arbitrary (malformed, truncated, hostile)
// trace input either parses into a trace that replays cleanly or returns
// an error — never a panic. Double frees and negative work-line counts
// must be rejected at parse time, not blow up later in Run.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte("trace t 4096\nm 64\nw 100 2\nf 0 1\na\n"))
	f.Add([]byte("m 64\nf 0 0\nf 0 0\n"))   // double free
	f.Add([]byte("w 10 -3\n"))              // negative line count
	f.Add([]byte("f 5 0\n"))                // free before malloc
	f.Add([]byte("trace"))                  // truncated header
	f.Add([]byte("m 18446744073709551615")) // max uint64 size
	f.Add([]byte("m 64\nf 0"))              // truncated free
	f.Add([]byte("x 1 2\n"))                // unknown event
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything ReadTrace accepts must replay without panicking.
		tr.Run(&nullApp{next: 1 << 30}, 0, nil)
	})
}
