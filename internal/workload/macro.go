package workload

import "mallacc/internal/stats"

// SizeWeight is one entry of a discrete request-size distribution.
type SizeWeight struct {
	Size   uint64
	Weight float64
}

// MacroConfig parameterizes a synthetic macro workload. The eight stock
// configurations below stand in for the paper's SPEC CPU2006 subset,
// masstree and xapian runs; the parameters were chosen to reproduce the
// published behavioural signatures (see DESIGN.md):
//
//   - the size-class usage CDFs of Figure 6 (how many classes cover 90% of
//     malloc calls),
//   - the allocation/free balance (masstree performance tests never free,
//     so they continuously hit the page allocator — Sec. 3.2),
//   - the time-in-allocator fractions of Figure 18, via the application
//     work model between allocator calls,
//   - the cache pressure that turns 18-cycle fast paths into L2/L3 stalls
//     (Figure 16's 20-70 cycle region), via the application footprint.
type MacroConfig struct {
	WName string
	// Mix is the discrete size distribution of common requests.
	Mix []SizeWeight
	// TailProb draws from a uniform tail in [16, TailMax] instead of Mix,
	// giving workloads like xalancbmk their long size-class tail.
	TailProb float64
	TailMax  uint64
	// FreeProb is the chance each allocation is matched by freeing a
	// random live object; 0 with NeverFree set models the masstree
	// performance tests.
	FreeProb  float64
	NeverFree bool
	// MaxLive caps the tracked live set (oldest objects are freed beyond
	// it, in bulk, modelling phase deaths) — ignored when NeverFree.
	MaxLive int
	// Sized marks frees as sized deletes (-fsized-deallocation).
	Sized bool
	// Application model: uniform cycles of work between allocator calls,
	// touching WorkLines random lines of a FootprintBytes working set.
	WorkCyclesMin, WorkCyclesMax uint64
	WorkLines                    int
	FootprintBytes               uint64
	// Burst behaviour: every BurstEvery allocations, allocate a batch of
	// one burst size and free it together afterwards. This drains thread
	// caches through the central lists and page heap, producing the
	// slow-path peaks of Figure 1. Successive bursts cycle through
	// BurstSizes; each burst allocates ~BurstBytes in total.
	BurstEvery int
	BurstSizes []uint64
	BurstBytes uint64
	// LargeEvery issues an occasional large (>256 KiB) request.
	LargeEvery int
	LargeSize  uint64
}

type macro struct{ cfg MacroConfig }

// NewMacro builds a workload from an explicit configuration.
func NewMacro(cfg MacroConfig) Workload { return &macro{cfg: cfg} }

func (m *macro) Name() string { return m.cfg.WName }

func (m *macro) Footprint() uint64 { return m.cfg.FootprintBytes }

func (m *macro) drawSize(rng *stats.RNG) uint64 {
	c := &m.cfg
	if c.TailProb > 0 && rng.Float64() < c.TailProb {
		return 16 + rng.Uint64n(c.TailMax-16)
	}
	total := 0.0
	for _, sw := range c.Mix {
		total += sw.Weight
	}
	x := rng.Float64() * total
	for _, sw := range c.Mix {
		x -= sw.Weight
		if x <= 0 {
			return sw.Size
		}
	}
	return c.Mix[len(c.Mix)-1].Size
}

func (m *macro) Run(app App, budget int, rng *stats.RNG) {
	c := &m.cfg
	var live liveSet
	calls := 0
	work := func() {
		span := c.WorkCyclesMax - c.WorkCyclesMin
		cyc := c.WorkCyclesMin
		if span > 0 {
			cyc += rng.Uint64n(span + 1)
		}
		app.Work(cyc, c.WorkLines)
	}
	sizedHint := func(size uint64) uint64 {
		if c.Sized {
			return size
		}
		return 0
	}
	// Warmup: populate free lists across the mix.
	for i := 0; i < 32; i++ {
		for _, sw := range c.Mix {
			live.add(app.Malloc(sw.Size), sw.Size)
		}
	}
	if !c.NeverFree {
		n := live.len() / 2
		for i := 0; i < n; i++ {
			a, s := live.removeAt(rng.Intn(live.len()))
			app.Free(a, sizedHint(s))
		}
	}

	allocs := 0
	for calls < budget {
		work()
		size := m.drawSize(rng)
		if c.LargeEvery > 0 && allocs%c.LargeEvery == c.LargeEvery-1 {
			size = c.LargeSize
		}
		a := app.Malloc(size)
		allocs++
		calls++
		if c.NeverFree {
			continue
		}
		live.add(a, size)
		if rng.Bernoulli(c.FreeProb) && live.len() > 0 {
			fa, fs := live.removeAt(rng.Intn(live.len()))
			app.Free(fa, sizedHint(fs))
			calls++
		}
		if c.MaxLive > 0 && live.len() > c.MaxLive {
			// Phase death: bulk-free the overflow.
			for live.len() > c.MaxLive/2 && calls < budget+64 {
				fa, fs := live.removeAt(rng.Intn(live.len()))
				app.Free(fa, sizedHint(fs))
				calls++
			}
		}
		if c.BurstEvery > 0 && allocs%c.BurstEvery == 0 && len(c.BurstSizes) > 0 {
			size := c.BurstSizes[(allocs/c.BurstEvery)%len(c.BurstSizes)]
			count := int(c.BurstBytes / size)
			if count < 1 {
				count = 1
			}
			var burst liveSet
			for i := 0; i < count; i++ {
				burst.add(app.Malloc(size), size)
				calls++
			}
			work()
			burst.drainAll(app, c.Sized)
			calls += count
		}
	}
}

// The eight macro workloads.

// NewPerlbench models 400.perlbench.diffmail: a handful of dominant string
// and small-structure classes, near-balanced alloc/free, and periodic
// phase bursts that reach the central lists and page allocator (the three
// peaks of Figure 1).
func NewPerlbench() Workload {
	return NewMacro(MacroConfig{
		WName: "400.perlbench",
		Mix: []SizeWeight{
			{16, 0.28}, {32, 0.26}, {64, 0.20}, {128, 0.10},
			{288, 0.08}, {512, 0.05}, {1024, 0.03},
		},
		FreeProb: 0.96, MaxLive: 20000, Sized: true,
		WorkCyclesMin: 1400, WorkCyclesMax: 2300, WorkLines: 3,
		FootprintBytes: 1 << 20,
		BurstEvery:     3000, BurstSizes: []uint64{4096, 16384, 49152}, BurstBytes: 2400 << 10,
		LargeEvery: 20000, LargeSize: 512 << 10,
	})
}

// NewTonto models 465.tonto: sparse allocation from a Fortran workload —
// few classes, long compute gaps.
func NewTonto() Workload {
	return NewMacro(MacroConfig{
		WName:    "465.tonto",
		Mix:      []SizeWeight{{64, 0.45}, {128, 0.30}, {2048, 0.15}, {8192, 0.10}},
		FreeProb: 0.95, MaxLive: 5000, Sized: true,
		WorkCyclesMin: 9000, WorkCyclesMax: 15000, WorkLines: 6,
		FootprintBytes: 2 << 20,
	})
}

// NewOmnetpp models 471.omnetpp: discrete-event simulation with a very
// high rate of small event-object churn.
func NewOmnetpp() Workload {
	return NewMacro(MacroConfig{
		WName:    "471.omnetpp",
		Mix:      []SizeWeight{{40, 0.50}, {80, 0.30}, {208, 0.15}, {416, 0.05}},
		FreeProb: 1.0, MaxLive: 30000, Sized: true,
		WorkCyclesMin: 550, WorkCyclesMax: 950, WorkLines: 3,
		FootprintBytes: 2 << 20,
	})
}

// NewXalancbmk models 483.xalancbmk: the broadest size-class distribution
// of the suite (30 classes for 90% coverage, Fig. 6) with significant
// cache pressure from the XML document tree.
func NewXalancbmk() Workload {
	mix := []SizeWeight{{16, 0.22}, {32, 0.18}, {28, 0.06}, {64, 0.12}, {48, 0.08}}
	// Long tail of node and buffer sizes with geometric weights.
	w := 0.035
	for _, s := range []uint64{96, 144, 176, 240, 320, 448, 576, 704, 896, 1152, 1408, 1792, 2304, 2816, 3584, 4608, 5632, 7168, 9216} {
		mix = append(mix, SizeWeight{s, w})
		w *= 0.93
	}
	return NewMacro(MacroConfig{
		WName: "483.xalancbmk",
		Mix:   mix, TailProb: 0.10, TailMax: 12288,
		FreeProb: 0.92, MaxLive: 40000, Sized: true,
		WorkCyclesMin: 1200, WorkCyclesMax: 1950, WorkLines: 5,
		FootprintBytes: 6 << 20,
		LargeEvery:     25000, LargeSize: 384 << 10,
	})
}

// NewMasstreeSame models masstree.same: the key-value store's performance
// test, which never frees and continuously grows the tree — so the
// allocator keeps going back to the page allocator (Sec. 3.2).
func NewMasstreeSame() Workload {
	return NewMacro(MacroConfig{
		WName:     "masstree.same",
		Mix:       []SizeWeight{{272, 0.94}, {64, 0.06}},
		NeverFree: true,
		// Periodic value-log/arena chunk allocations (>256 KiB) go
		// straight to the page allocator, which with never-free keeps
		// demanding OS memory — the behaviour Sec. 3.2 describes.
		LargeEvery: 24, LargeSize: 384 << 10,
		WorkCyclesMin: 300, WorkCyclesMax: 600, WorkLines: 4,
		FootprintBytes: 8 << 20,
	})
}

// NewMasstreeWcol1 models masstree.wcol1: same never-free behaviour with a
// wider node/value mix and more per-operation work.
func NewMasstreeWcol1() Workload {
	return NewMacro(MacroConfig{
		WName:      "masstree.wcol1",
		Mix:        []SizeWeight{{272, 0.68}, {1040, 0.24}, {64, 0.08}},
		NeverFree:  true,
		LargeEvery: 64, LargeSize: 384 << 10,
		WorkCyclesMin: 750, WorkCyclesMax: 1300, WorkLines: 6,
		FootprintBytes: 8 << 20,
	})
}

// NewXapianAbstracts models xapian.abstracts: query execution over an
// index of page abstracts — a tiny set of size classes (Fig. 6), almost
// pure fast path (Sec. 6.1).
func NewXapianAbstracts() Workload {
	return NewMacro(MacroConfig{
		WName:    "xapian.abstracts",
		Mix:      []SizeWeight{{32, 0.42}, {64, 0.38}, {128, 0.14}, {512, 0.06}},
		FreeProb: 0.98, MaxLive: 8000, Sized: true,
		WorkCyclesMin: 600, WorkCyclesMax: 1400, WorkLines: 5,
		FootprintBytes: 4 << 20,
	})
}

// NewXapianPages models xapian.pages: the same engine over full articles —
// same classes, more application work per allocation.
func NewXapianPages() Workload {
	return NewMacro(MacroConfig{
		WName:    "xapian.pages",
		Mix:      []SizeWeight{{32, 0.40}, {64, 0.38}, {128, 0.15}, {512, 0.07}},
		FreeProb: 0.98, MaxLive: 8000, Sized: true,
		WorkCyclesMin: 1200, WorkCyclesMax: 2600, WorkLines: 7,
		FootprintBytes: 4 << 20,
	})
}
