package workload

import "mallacc/internal/stats"

// The six microbenchmarks of Section 5. Strided benchmarks fit in L1 and
// are the best-case baselines; Gaussian ones have larger working sets.
//
// All microbenchmarks warm their free lists first ("run with sufficient
// warmup time"): each exercised size class gets a small backing pool so
// thread-cache lists have depth, as the real benchmarks accumulate during
// their warmup phase.

// strided is the common core of tp, tp_small and sized_deletes: per
// iteration, a back-to-back malloc+free pair for each size in
// [lo, hi] stepping by `step`.
type strided struct {
	name         string
	lo, hi, step uint64
	sized        bool
	warmPerClass int
}

// NewTP returns the tp microbenchmark: strides 32..512 by 16 (25 size
// classes), throughput oriented.
func NewTP() Workload {
	return &strided{name: "ubench.tp", lo: 32, hi: 512, step: 16, sized: false, warmPerClass: 8}
}

// NewTPSmall returns tp_small: strides only up to 128 so each iteration
// touches a different free list and only four size classes are used.
func NewTPSmall() Workload {
	return &strided{name: "ubench.tp_small", lo: 32, hi: 128, step: 32, sized: false, warmPerClass: 8}
}

// NewSizedDeletes returns sized_deletes: a tp_small variant using eight
// size classes and sized deallocation.
func NewSizedDeletes() Workload {
	return &strided{name: "ubench.sized_deletes", lo: 32, hi: 256, step: 32, sized: true, warmPerClass: 8}
}

func (s *strided) Name() string { return s.name }

func (s *strided) Run(app App, budget int, rng *stats.RNG) {
	// Warmup: give every size class list depth so steady state matches a
	// long-running process.
	var warm liveSet
	for i := 0; i < s.warmPerClass; i++ {
		for size := s.lo; size <= s.hi; size += s.step {
			warm.add(app.Malloc(size), size)
		}
	}
	warm.drainAll(app, s.sized)

	calls := 0
	for calls < budget {
		for size := s.lo; size <= s.hi && calls < budget; size += s.step {
			a := app.Malloc(size)
			hint := uint64(0)
			if s.sized {
				hint = size
			}
			app.Free(a, hint)
			calls += 2
		}
	}
}

// gaussian implements gauss / gauss_free / antagonist: 90% of requests are
// small (16-64B), 10% relatively large (256-512B), sizes drawn from normal
// distributions within each range.
type gaussian struct {
	name       string
	freeProb   float64
	antagonize bool
	// maxLive bounds memory for the never-freeing variant (the paper runs
	// finite iterations; we cap the live set and drop oldest handles
	// without freeing them — the memory simply stays allocated).
	maxLive int
}

// NewGauss returns gauss: realistic sizes, never frees — the lower bound
// for free-list-centric optimizations.
func NewGauss() Workload {
	return &gaussian{name: "ubench.gauss", freeProb: 0, maxLive: 1 << 20}
}

// NewGaussFree returns gauss_free: same allocation behaviour, frees each
// object with 50% probability.
func NewGaussFree() Workload {
	return &gaussian{name: "ubench.gauss_free", freeProb: 0.5}
}

// NewAntagonist returns antagonist: gauss_free plus the simulator callback
// that evicts the LRU half of each L1/L2 set after every allocation.
func NewAntagonist() Workload {
	return &gaussian{name: "ubench.antagonist", freeProb: 0.5, antagonize: true}
}

func (g *gaussian) Name() string { return g.name }

func (g *gaussian) drawSize(rng *stats.RNG) uint64 {
	if rng.Float64() < 0.9 {
		// Small: strings and small lists.
		return uint64(rng.Gaussian(40, 12, 16, 64))
	}
	return uint64(rng.Gaussian(384, 64, 256, 512))
}

func (g *gaussian) Run(app App, budget int, rng *stats.RNG) {
	var live liveSet
	// Warmup pool so free lists have depth.
	for i := 0; i < 64; i++ {
		sz := g.drawSize(rng)
		live.add(app.Malloc(sz), sz)
	}
	calls := 0
	for calls < budget {
		size := g.drawSize(rng)
		a := app.Malloc(size)
		calls++
		if g.antagonize {
			app.Antagonize()
		}
		if g.freeProb > 0 && rng.Bernoulli(g.freeProb) {
			live.add(a, size)
			k := rng.Intn(live.len())
			fa, fs := live.removeAt(k)
			app.Free(fa, fs)
			calls++
		} else if g.freeProb > 0 {
			live.add(a, size)
		} else if live.len() < g.maxLive {
			live.add(a, size)
		}
	}
}
