package workload

import "sync"

// Footprinter is implemented by workloads that model an application
// working set; the driver sizes its between-calls cache touches from it.
type Footprinter interface {
	Footprint() uint64
}

// FootprintOf returns a workload's application working-set size (0 when it
// does not model one). Recorded traces carry their source workload's
// footprint.
func FootprintOf(w Workload) uint64 {
	if t, ok := w.(*Trace); ok {
		return t.Footprint
	}
	if f, ok := w.(Footprinter); ok {
		return f.Footprint()
	}
	return 0
}

// Micro returns the six paper microbenchmarks in the order of Figure 4.
func Micro() []Workload {
	return []Workload{
		NewAntagonist(),
		NewGauss(),
		NewGaussFree(),
		NewSizedDeletes(),
		NewTP(),
		NewTPSmall(),
	}
}

// Macro returns the eight macro workloads in the order of Figures 13/14.
func Macro() []Workload {
	return []Workload{
		NewPerlbench(),
		NewTonto(),
		NewOmnetpp(),
		NewXalancbmk(),
		NewMasstreeSame(),
		NewMasstreeWcol1(),
		NewXapianAbstracts(),
		NewXapianPages(),
	}
}

// All returns every stock workload: the paper's micro- and macro-benchmarks
// plus the extension workloads (the server request loop).
func All() []Workload {
	return append(append(Micro(), Macro()...), NewServerRequests())
}

// ByName finds a stock workload by its exact name, constructing a fresh
// instance (generators carry per-run state, so they are never shared).
func ByName(name string) (Workload, bool) {
	if !Known(name) {
		return nil, false
	}
	for _, w := range All() {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}

// stockNames is the cached name set of the stock workloads. Names are
// fixed at compile time, so one construction of the generator list serves
// every lookup — hot paths (spec canonicalization, run-key hashing) call
// Known per request and must not rebuild ~15 generators each time.
var stockNames = sync.OnceValue(func() map[string]bool {
	set := map[string]bool{}
	for _, w := range All() {
		set[w.Name()] = true
	}
	return set
})

// Known reports whether name is a stock workload, without constructing any
// generators.
func Known(name string) bool { return stockNames()[name] }

// Names returns every stock workload name in registry order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}
