package workload

// Footprinter is implemented by workloads that model an application
// working set; the driver sizes its between-calls cache touches from it.
type Footprinter interface {
	Footprint() uint64
}

// FootprintOf returns a workload's application working-set size (0 when it
// does not model one). Recorded traces carry their source workload's
// footprint.
func FootprintOf(w Workload) uint64 {
	if t, ok := w.(*Trace); ok {
		return t.Footprint
	}
	if f, ok := w.(Footprinter); ok {
		return f.Footprint()
	}
	return 0
}

// Micro returns the six paper microbenchmarks in the order of Figure 4.
func Micro() []Workload {
	return []Workload{
		NewAntagonist(),
		NewGauss(),
		NewGaussFree(),
		NewSizedDeletes(),
		NewTP(),
		NewTPSmall(),
	}
}

// Macro returns the eight macro workloads in the order of Figures 13/14.
func Macro() []Workload {
	return []Workload{
		NewPerlbench(),
		NewTonto(),
		NewOmnetpp(),
		NewXalancbmk(),
		NewMasstreeSame(),
		NewMasstreeWcol1(),
		NewXapianAbstracts(),
		NewXapianPages(),
	}
}

// All returns every stock workload: the paper's micro- and macro-benchmarks
// plus the extension workloads (the server request loop).
func All() []Workload {
	return append(append(Micro(), Macro()...), NewServerRequests())
}

// ByName finds a stock workload by its exact name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}
