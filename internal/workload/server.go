package workload

import "mallacc/internal/stats"

// serverHeaderAllocs is one request's header-string count; with the
// response buffer it fixes the per-request allocator-call footprint at
// 2*(serverHeaderAllocs+1) (every allocation is freed at request end).
const serverHeaderAllocs = 6

// serverFootprint is the shared in-memory index a request's application
// work reads against — large enough to pressure L2 between allocator calls.
const serverFootprint = 8 << 20

// server is the datacenter-style request-handling loop: each request parses
// headers (several small short-lived strings), builds a response buffer
// (occasionally large enough to stream from spans), does index-lookup work,
// and frees everything with sized deletes at request end. It began life as
// the examples/webserver driver and is registered as a stock workload so the
// simulation service can resolve it by name — the service's own serving
// loop, simulated.
type server struct{}

// NewServerRequests returns the request-handling loop workload.
func NewServerRequests() Workload { return server{} }

func (server) Name() string { return "server.requests" }

func (server) Footprint() uint64 { return serverFootprint }

func (server) Run(app App, budget int, rng *stats.RNG) {
	const callsPerRequest = 2 * (serverHeaderAllocs + 1)
	live := make([][2]uint64, 0, serverHeaderAllocs+1)
	for calls := 0; calls+callsPerRequest <= budget; calls += callsPerRequest {
		live = live[:0]

		// Parse headers: small, short-lived strings.
		for i := 0; i < serverHeaderAllocs; i++ {
			sz := uint64(16 + rng.Intn(112))
			live = append(live, [2]uint64{app.Malloc(sz), sz})
		}
		// Response buffer, occasionally large.
		bufSize := uint64(512 + 256*uint64(rng.Intn(6)))
		if rng.Bernoulli(0.005) {
			bufSize = 300 << 10 // large responses stream from spans
		}
		live = append(live, [2]uint64{app.Malloc(bufSize), bufSize})

		// Application work: index lookups and response rendering.
		app.Work(800+rng.Uint64n(1200), 8)

		// Request teardown: sized deletes.
		for _, blk := range live {
			app.Free(blk[0], blk[1])
		}
	}
}
