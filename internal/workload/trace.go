package workload

import (
	"bufio"
	"fmt"
	"io"

	"mallacc/internal/stats"
)

// Allocation traces: any workload can be recorded into a portable event
// list and replayed later (or on a different allocator/configuration).
// This is how users bring real application traces to the simulator — the
// format is line-oriented text, one event per line:
//
//	m <size>             allocate <size> bytes
//	f <seq> <hint>       free the allocation numbered <seq>; hint 1 = sized
//	w <cycles> <lines>   application work
//	a                    antagonist cache eviction
//
// Allocation numbers count mallocs from 0 in trace order.

// EventKind tags a trace event.
type EventKind byte

// Event kinds.
const (
	EvMalloc     EventKind = 'm'
	EvFree       EventKind = 'f'
	EvWork       EventKind = 'w'
	EvAntagonize EventKind = 'a'
)

// Event is one recorded allocator-visible action.
type Event struct {
	Kind EventKind
	// Size is the request size (EvMalloc) or work cycles (EvWork).
	Size uint64
	// Seq is the malloc ordinal being freed (EvFree).
	Seq int
	// Sized marks a sized delete (EvFree).
	Sized bool
	// Lines is the cache-line touch count (EvWork).
	Lines int
}

// Trace is a recorded event sequence; it implements Workload, so a trace
// replays anywhere a generator runs.
type Trace struct {
	TName     string
	Footprint uint64
	Events    []Event
}

// Name implements Workload.
func (t *Trace) Name() string { return t.TName }

// Run replays the trace. The budget and rng are ignored — a trace is
// exact.
func (t *Trace) Run(app App, _ int, _ *stats.RNG) {
	addrs := make([]uint64, 0, len(t.Events))
	sizes := make([]uint64, 0, len(t.Events))
	for _, ev := range t.Events {
		switch ev.Kind {
		case EvMalloc:
			addrs = append(addrs, app.Malloc(ev.Size))
			sizes = append(sizes, ev.Size)
		case EvFree:
			if ev.Seq >= len(addrs) || addrs[ev.Seq] == 0 {
				panic(fmt.Sprintf("workload: trace frees allocation %d twice or before it exists", ev.Seq))
			}
			hint := uint64(0)
			if ev.Sized {
				hint = sizes[ev.Seq]
			}
			app.Free(addrs[ev.Seq], hint)
			addrs[ev.Seq] = 0
		case EvWork:
			app.Work(ev.Size, ev.Lines)
		case EvAntagonize:
			app.Antagonize()
		}
	}
}

// recorder wraps an App and captures the event stream.
type recorder struct {
	inner  App
	events []Event
	seqOf  map[uint64]int
	sizeOf map[uint64]uint64
	n      int
}

func (r *recorder) Malloc(size uint64) uint64 {
	addr := r.inner.Malloc(size)
	r.events = append(r.events, Event{Kind: EvMalloc, Size: size})
	r.seqOf[addr] = r.n
	r.sizeOf[addr] = size
	r.n++
	return addr
}

func (r *recorder) Free(addr, hint uint64) {
	seq, ok := r.seqOf[addr]
	if !ok {
		panic(fmt.Sprintf("workload: recorded free of unknown address %#x", addr))
	}
	delete(r.seqOf, addr)
	delete(r.sizeOf, addr)
	r.events = append(r.events, Event{Kind: EvFree, Seq: seq, Sized: hint != 0})
	r.inner.Free(addr, hint)
}

func (r *recorder) Work(cycles uint64, lines int) {
	r.events = append(r.events, Event{Kind: EvWork, Size: cycles, Lines: lines})
	r.inner.Work(cycles, lines)
}

func (r *recorder) Antagonize() {
	r.events = append(r.events, Event{Kind: EvAntagonize})
	r.inner.Antagonize()
}

// Record runs w against app while capturing its event stream as a Trace.
// The returned trace replays the exact same request sequence.
func Record(w Workload, app App, budget int, rng *stats.RNG) *Trace {
	rec := &recorder{inner: app, seqOf: map[uint64]int{}, sizeOf: map[uint64]uint64{}}
	w.Run(rec, budget, rng)
	return &Trace{
		TName:     w.Name() + ".trace",
		Footprint: FootprintOf(w),
		Events:    rec.events,
	}
}

// nullApp satisfies App with synthetic addresses and no simulation; used
// to capture a generator's request stream cheaply.
type nullApp struct{ next uint64 }

func (n *nullApp) Malloc(uint64) uint64 {
	n.next += 1 << 20
	return n.next
}
func (n *nullApp) Free(uint64, uint64) {}
func (n *nullApp) Work(uint64, int)    {}
func (n *nullApp) Antagonize()         {}

// RecordOnly captures w's request stream without simulating anything.
func RecordOnly(w Workload, budget int, rng *stats.RNG) *Trace {
	return Record(w, &nullApp{next: 1 << 30}, budget, rng)
}

// WriteTo serializes the trace in the text format above, preceded by a
// header line ("trace <name> <footprint>").
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "trace %s %d\n", t.TName, t.Footprint)); err != nil {
		return n, err
	}
	for _, ev := range t.Events {
		var err error
		switch ev.Kind {
		case EvMalloc:
			err = count(fmt.Fprintf(bw, "m %d\n", ev.Size))
		case EvFree:
			h := 0
			if ev.Sized {
				h = 1
			}
			err = count(fmt.Fprintf(bw, "f %d %d\n", ev.Seq, h))
		case EvWork:
			err = count(fmt.Fprintf(bw, "w %d %d\n", ev.Size, ev.Lines))
		case EvAntagonize:
			err = count(fmt.Fprintf(bw, "a\n"))
		}
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the text format.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	line := 0
	mallocs := 0
	var freed []bool
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		switch text[0] {
		case 't':
			if _, err := fmt.Sscanf(text, "trace %s %d", &t.TName, &t.Footprint); err != nil {
				return nil, fmt.Errorf("workload: bad trace header line %d: %q", line, text)
			}
		case 'm':
			var size uint64
			if _, err := fmt.Sscanf(text, "m %d", &size); err != nil {
				return nil, fmt.Errorf("workload: bad malloc line %d: %q", line, text)
			}
			t.Events = append(t.Events, Event{Kind: EvMalloc, Size: size})
			mallocs++
			freed = append(freed, false)
		case 'f':
			var seq, hint int
			if _, err := fmt.Sscanf(text, "f %d %d", &seq, &hint); err != nil {
				return nil, fmt.Errorf("workload: bad free line %d: %q", line, text)
			}
			if seq < 0 || seq >= mallocs {
				return nil, fmt.Errorf("workload: free of not-yet-allocated seq %d at line %d", seq, line)
			}
			if freed[seq] {
				return nil, fmt.Errorf("workload: double free of seq %d at line %d", seq, line)
			}
			freed[seq] = true
			t.Events = append(t.Events, Event{Kind: EvFree, Seq: seq, Sized: hint != 0})
		case 'w':
			var cyc uint64
			var lines int
			if _, err := fmt.Sscanf(text, "w %d %d", &cyc, &lines); err != nil {
				return nil, fmt.Errorf("workload: bad work line %d: %q", line, text)
			}
			if lines < 0 {
				return nil, fmt.Errorf("workload: negative line count at line %d: %q", line, text)
			}
			t.Events = append(t.Events, Event{Kind: EvWork, Size: cyc, Lines: lines})
		case 'a':
			t.Events = append(t.Events, Event{Kind: EvAntagonize})
		default:
			return nil, fmt.Errorf("workload: unknown event at line %d: %q", line, text)
		}
	}
	return t, sc.Err()
}
