package workload

import (
	"bytes"
	"strings"
	"testing"

	"mallacc/internal/stats"
)

func TestRecordCapturesEverything(t *testing.T) {
	app := newFakeApp(t)
	tr := Record(NewGaussFree(), app, 2000, stats.NewRNG(3))
	if tr.Name() != "ubench.gauss_free.trace" {
		t.Errorf("trace name %q", tr.Name())
	}
	var mallocs, frees int
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvMalloc:
			mallocs++
		case EvFree:
			frees++
		}
	}
	if mallocs != len(app.mallocs) || frees != app.frees {
		t.Fatalf("recorded %d/%d, app saw %d/%d", mallocs, frees, len(app.mallocs), app.frees)
	}
}

func TestTraceRoundTripSerialization(t *testing.T) {
	app := newFakeApp(t)
	tr := Record(NewAntagonist(), app, 1500, stats.NewRNG(9))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TName != tr.TName || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip: %q/%d vs %q/%d", back.TName, len(back.Events), tr.TName, len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != back.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, tr.Events[i], back.Events[i])
		}
	}
}

func TestReplayMatchesOriginalStream(t *testing.T) {
	// Record tp against one fake app, replay against another: the request
	// streams must be byte-identical.
	a1 := newFakeApp(t)
	tr := Record(NewTP(), a1, 1200, stats.NewRNG(4))
	a2 := newFakeApp(t)
	tr.Run(a2, 0, nil)
	if len(a1.mallocs) != len(a2.mallocs) {
		t.Fatalf("malloc count %d vs %d", len(a1.mallocs), len(a2.mallocs))
	}
	for i := range a1.mallocs {
		if a1.mallocs[i] != a2.mallocs[i] {
			t.Fatalf("malloc %d: %d vs %d", i, a1.mallocs[i], a2.mallocs[i])
		}
	}
	if a1.frees != a2.frees || a1.sized != a2.sized {
		t.Fatalf("free streams differ: %d/%d vs %d/%d", a1.frees, a1.sized, a2.frees, a2.sized)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"x 1\n",
		"m notanumber\n",
		"f 0 1\n", // free before any malloc
		"w 10\n",  // missing lines field
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTrace(%q) accepted garbage", c)
		}
	}
}

func TestReplayPanicsOnDoubleFree(t *testing.T) {
	tr := &Trace{TName: "bad", Events: []Event{
		{Kind: EvMalloc, Size: 64},
		{Kind: EvFree, Seq: 0},
		{Kind: EvFree, Seq: 0},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("double-free trace did not panic")
		}
	}()
	tr.Run(newFakeApp(t), 0, nil)
}

func TestTraceFootprintPropagates(t *testing.T) {
	app := newFakeApp(t)
	tr := Record(NewXapianPages(), app, 500, stats.NewRNG(1))
	if FootprintOf(tr) != FootprintOf(NewXapianPages()) {
		t.Fatal("trace lost its footprint")
	}
}
