// Package workload defines the allocation request generators the
// evaluation drives through the simulated allocator: the paper's six
// microbenchmarks (Sec. 5) with their exact allocation patterns, and
// synthetic stand-ins for the eight macro workloads (SPEC CPU2006 subset,
// masstree, xapian) parameterized to reproduce the published size-class
// usage distributions (Fig. 6), allocation/free balance, and
// allocator-time fractions (Fig. 18).
//
// Workloads are pure request generators: they see only the App interface
// (malloc, free, application work between calls), so the same generator
// runs against any allocator mode or hardware configuration.
package workload

import "mallacc/internal/stats"

// App is what a workload sees of the simulated machine: allocator entry
// points plus hooks to model the application in between.
type App interface {
	// Malloc allocates size bytes and returns the simulated address.
	Malloc(size uint64) uint64
	// Free releases an address; sizeHint is the allocation's requested
	// size when the workload models sized delete, 0 otherwise.
	Free(addr uint64, sizeHint uint64)
	// Work models application execution between allocator calls: cycles
	// of computation touching `lines` cache lines of the app's working
	// set.
	Work(cycles uint64, lines int)
	// Antagonize evicts the LRU half of each L1/L2 set — the simulator
	// callback of the antagonist microbenchmark.
	Antagonize()
}

// Workload generates allocator traffic against an App until roughly
// budget allocator calls have been issued.
type Workload interface {
	Name() string
	Run(app App, budget int, rng *stats.RNG)
}

// liveSet tracks a workload's outstanding allocations.
type liveSet struct {
	addrs []uint64
	sizes []uint64
}

func (l *liveSet) add(addr, size uint64) {
	l.addrs = append(l.addrs, addr)
	l.sizes = append(l.sizes, size)
}

func (l *liveSet) len() int { return len(l.addrs) }

// removeAt removes and returns entry i (swap with last).
func (l *liveSet) removeAt(i int) (addr, size uint64) {
	addr, size = l.addrs[i], l.sizes[i]
	last := len(l.addrs) - 1
	l.addrs[i], l.sizes[i] = l.addrs[last], l.sizes[last]
	l.addrs = l.addrs[:last]
	l.sizes = l.sizes[:last]
	return addr, size
}

// drainAll frees everything, oldest first.
func (l *liveSet) drainAll(app App, sized bool) {
	for i := range l.addrs {
		hint := uint64(0)
		if sized {
			hint = l.sizes[i]
		}
		app.Free(l.addrs[i], hint)
	}
	l.addrs = l.addrs[:0]
	l.sizes = l.sizes[:0]
}
