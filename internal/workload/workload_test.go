package workload

import (
	"testing"

	"mallacc/internal/stats"
)

// fakeApp records the request stream without simulating anything.
type fakeApp struct {
	mallocs   []uint64
	frees     int
	sized     int
	unsized   int
	workCalls int
	antagon   int
	next      uint64
	live      map[uint64]uint64 // addr -> size
	t         *testing.T
}

func newFakeApp(t *testing.T) *fakeApp {
	return &fakeApp{next: 0x10000000, live: map[uint64]uint64{}, t: t}
}

func (f *fakeApp) Malloc(size uint64) uint64 {
	f.mallocs = append(f.mallocs, size)
	f.next += 1 << 20
	f.live[f.next] = size
	return f.next
}

func (f *fakeApp) Free(addr, hint uint64) {
	size, ok := f.live[addr]
	if !ok {
		f.t.Fatalf("free of unknown address %#x", addr)
	}
	delete(f.live, addr)
	f.frees++
	if hint == 0 {
		f.unsized++
	} else {
		f.sized++
		if hint != size {
			f.t.Fatalf("sized free hint %d for a %d-byte allocation", hint, size)
		}
	}
}

func (f *fakeApp) Work(cycles uint64, lines int) { f.workCalls++ }
func (f *fakeApp) Antagonize()                   { f.antagon++ }

func run(t *testing.T, w Workload, budget int) *fakeApp {
	t.Helper()
	app := newFakeApp(t)
	w.Run(app, budget, stats.NewRNG(5))
	return app
}

func TestRegistry(t *testing.T) {
	if len(Micro()) != 6 {
		t.Fatalf("micro count %d", len(Micro()))
	}
	if len(Macro()) != 8 {
		t.Fatalf("macro count %d", len(Macro()))
	}
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name()] {
			t.Fatalf("duplicate workload name %s", w.Name())
		}
		seen[w.Name()] = true
		got, ok := ByName(w.Name())
		if !ok || got.Name() != w.Name() {
			t.Fatalf("ByName(%s) failed", w.Name())
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestTPStridesSizes(t *testing.T) {
	app := run(t, NewTP(), 2000)
	if len(app.mallocs) == 0 {
		t.Fatal("no mallocs")
	}
	distinct := map[uint64]bool{}
	for _, s := range app.mallocs {
		if s < 32 || s > 512 || s%16 != 0 {
			t.Fatalf("tp issued size %d", s)
		}
		distinct[s] = true
	}
	if len(distinct) != 31 {
		t.Fatalf("tp used %d sizes, want 31", len(distinct))
	}
	// Back-to-back pairs: steady-state frees track mallocs.
	if app.frees < len(app.mallocs)*9/10 {
		t.Fatalf("tp frees %d of %d mallocs", app.frees, len(app.mallocs))
	}
	if app.sized != 0 {
		t.Fatal("tp should not use sized deletes")
	}
}

func TestTPSmallFourSizes(t *testing.T) {
	app := run(t, NewTPSmall(), 1000)
	distinct := map[uint64]bool{}
	for _, s := range app.mallocs {
		distinct[s] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("tp_small used %d sizes, want 4", len(distinct))
	}
}

func TestSizedDeletesUsesSizedFrees(t *testing.T) {
	app := run(t, NewSizedDeletes(), 1000)
	if app.unsized != 0 {
		t.Fatalf("%d unsized frees", app.unsized)
	}
	distinct := map[uint64]bool{}
	for _, s := range app.mallocs {
		distinct[s] = true
	}
	if len(distinct) != 8 {
		t.Fatalf("sized_deletes used %d sizes, want 8", len(distinct))
	}
}

func TestGaussSizeSplit(t *testing.T) {
	app := run(t, NewGauss(), 20000)
	small, large := 0, 0
	for _, s := range app.mallocs {
		switch {
		case s >= 16 && s <= 64:
			small++
		case s >= 256 && s <= 512:
			large++
		default:
			t.Fatalf("gauss issued size %d", s)
		}
	}
	frac := float64(small) / float64(small+large)
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("small fraction %.3f, want ~0.9", frac)
	}
	if app.frees != 0 {
		t.Fatal("gauss must never free")
	}
}

func TestGaussFreeBalance(t *testing.T) {
	app := run(t, NewGaussFree(), 20000)
	ratio := float64(app.frees) / float64(len(app.mallocs))
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("free ratio %.2f, want ~0.5", ratio)
	}
	if app.antagon != 0 {
		t.Fatal("gauss_free must not antagonize")
	}
}

func TestAntagonistCallsBack(t *testing.T) {
	app := run(t, NewAntagonist(), 5000)
	// One antagonist callback per allocation (minus warmup).
	if app.antagon == 0 {
		t.Fatal("no antagonist callbacks")
	}
	if float64(app.antagon) < 0.4*float64(len(app.mallocs)) {
		t.Fatalf("callbacks %d for %d mallocs", app.antagon, len(app.mallocs))
	}
}

func TestMasstreeNeverFrees(t *testing.T) {
	for _, w := range []Workload{NewMasstreeSame(), NewMasstreeWcol1()} {
		app := run(t, w, 3000)
		if app.frees != 0 {
			t.Fatalf("%s freed %d objects", w.Name(), app.frees)
		}
		if app.workCalls == 0 {
			t.Fatalf("%s did no application work", w.Name())
		}
	}
}

func TestMasstreeLargeAllocations(t *testing.T) {
	app := run(t, NewMasstreeSame(), 3000)
	large := 0
	for _, s := range app.mallocs {
		if s > 256<<10 {
			large++
		}
	}
	if large == 0 {
		t.Fatal("masstree.same issued no page-allocator-bound requests")
	}
}

func TestMacroBudgetRespected(t *testing.T) {
	for _, w := range Macro() {
		app := run(t, w, 5000)
		calls := len(app.mallocs) + app.frees
		if calls < 5000 {
			t.Errorf("%s issued %d calls for budget 5000", w.Name(), calls)
		}
		if calls > 5000+3000 {
			t.Errorf("%s overshot budget: %d calls", w.Name(), calls)
		}
	}
}

func TestXalancbmkBroadDistribution(t *testing.T) {
	app := run(t, NewXalancbmk(), 30000)
	distinct := map[uint64]bool{}
	for _, s := range app.mallocs {
		distinct[s] = true
	}
	if len(distinct) < 20 {
		t.Fatalf("xalancbmk used only %d distinct sizes", len(distinct))
	}
}

func TestFootprintOf(t *testing.T) {
	if FootprintOf(NewTP()) != 0 {
		t.Error("tp should have no modeled footprint")
	}
	if FootprintOf(NewXapianPages()) == 0 {
		t.Error("xapian should model a footprint")
	}
}

func TestLiveSetRemoveAt(t *testing.T) {
	var l liveSet
	l.add(1, 10)
	l.add(2, 20)
	l.add(3, 30)
	a, s := l.removeAt(0)
	if a != 1 || s != 10 || l.len() != 2 {
		t.Fatalf("removeAt: %d %d len=%d", a, s, l.len())
	}
	// Swapped-in last element.
	if l.addrs[0] != 3 {
		t.Fatalf("swap-remove broken: %v", l.addrs)
	}
}
