// Package mallacc is a software reproduction of "Mallacc: Accelerating
// Memory Allocation" (Kanev, Xi, Wei, Brooks — ASPLOS 2017).
//
// The paper proposes a tiny in-core hardware accelerator for the fast path
// of modern size-class memory allocators: a software-managed "malloc
// cache" mapping request sizes to size classes and caching the first two
// free-list elements, five new instructions to drive it (mcszlookup,
// mcszupdate, mchdpop, mchdpush, mcnxtprefetch), and a sampling
// performance counter. This module rebuilds the whole evaluation stack in
// Go: a functionally faithful TCMalloc over a simulated address space, a
// Haswell-like out-of-order timing model with an L1/L2/L3+TLB cache
// simulator, the accelerator itself, the paper's micro- and
// macro-workloads, and one runner per published figure and table.
//
// Three entry points cover most uses:
//
//   - System: an interactive simulated machine — allocate, free, and model
//     application work, getting per-call cycle counts back.
//
//   - Run: execute one workload under one configuration and collect the
//     full measurement set (latency histograms, allocator fractions,
//     accelerator hit rates).
//
//   - RunExperiment / Experiments: regenerate the paper's figures and
//     tables.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package mallacc

import (
	"fmt"
	"io"

	"mallacc/internal/area"
	"mallacc/internal/cachesim"
	"mallacc/internal/catalog"
	"mallacc/internal/core"
	"mallacc/internal/cpu"
	"mallacc/internal/harness"
	"mallacc/internal/hoard"
	"mallacc/internal/jemalloc"
	"mallacc/internal/multicore"
	"mallacc/internal/simsvc"
	"mallacc/internal/stats"
	"mallacc/internal/tcmalloc"
	"mallacc/internal/telemetry"
	"mallacc/internal/uop"
	"mallacc/internal/workload"
)

// Variant selects the simulated configuration.
type Variant = harness.Variant

// The evaluated configurations: the paper's three plus the offload-core
// design point from the design-space study.
const (
	// Baseline is unmodified TCMalloc on the stock core.
	Baseline = harness.VariantBaseline
	// Mallacc runs the accelerated fast path (Figures 10 and 12).
	Mallacc = harness.VariantMallacc
	// Limit is the limit study: fast-path step instructions ignored by
	// timing.
	Limit = harness.VariantLimit
	// Offload dispatches malloc/free over a modeled queue to a dedicated
	// lightweight allocation core (internal/offload).
	Offload = harness.VariantOffload
)

// Allocator substrates (RunOptions.Backend / ClusterConfig.Backend).
const (
	// BackendTCMalloc is the default simulated TCMalloc heap.
	BackendTCMalloc = catalog.BackendTCMalloc
	// BackendLockFree is the per-size-class lock-free stack allocator.
	BackendLockFree = catalog.BackendLockFree
)

// RunOptions configures a single workload run.
type RunOptions = harness.Options

// Result is the measurement set one run produces.
type Result = harness.Result

// Workload generates allocator traffic.
type Workload = workload.Workload

// WorkloadConfig parameterizes a custom synthetic application workload.
type WorkloadConfig = workload.MacroConfig

// SizeWeight is one entry of a workload's request-size distribution.
type SizeWeight = workload.SizeWeight

// Report is a rendered experiment outcome.
type Report = harness.Report

// Experiment is one of the paper's figures or tables.
type Experiment = harness.Experiment

// ExpOptions scales experiment runs.
type ExpOptions = harness.ExpOptions

// Run executes one workload under the given options.
func Run(opt RunOptions) *Result { return harness.Run(opt) }

// Workloads returns the paper's six microbenchmarks and eight macro
// workloads.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up a stock workload (e.g. "ubench.tp_small",
// "xapian.pages").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// NewWorkload builds a custom synthetic workload from an explicit
// configuration.
func NewWorkload(cfg WorkloadConfig) Workload { return workload.NewMacro(cfg) }

// WorkloadTrace is a recorded, replayable allocation request stream; it
// implements Workload and serializes to a portable text format, so real
// application traces can be brought to the simulator.
type WorkloadTrace = workload.Trace

// RecordTrace captures a workload's exact request stream (no simulation).
func RecordTrace(w Workload, calls int, seed uint64) *WorkloadTrace {
	return workload.RecordOnly(w, calls, stats.NewRNG(seed+1))
}

// ReadTrace parses a serialized trace (see WorkloadTrace.WriteTo).
func ReadTrace(r io.Reader) (*WorkloadTrace, error) { return workload.ReadTrace(r) }

// Experiments returns every reproducible figure and table, in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// RunExperiment regenerates one figure or table by ID (e.g. "fig13",
// "table2", "area").
func RunExperiment(id string, opt ExpOptions) (*Report, error) {
	e, ok := harness.ByID(id)
	if !ok {
		return nil, fmt.Errorf("mallacc: unknown experiment %q", id)
	}
	return e.Run(opt), nil
}

// Service is the simulation service: a job queue, a bounded worker pool
// and a content-addressed result cache in front of the simulator. The
// mallacc-serve daemon serves its HTTP API; embedders can run it
// in-process and drive it through Submit/Await or mount Handler on their
// own listener.
type Service = simsvc.Service

// ServiceConfig sizes a Service.
type ServiceConfig = simsvc.Config

// JobSpec fully describes one deterministic simulation job.
type JobSpec = simsvc.JobSpec

// JobStatus is a job's externally visible state.
type JobStatus = simsvc.JobStatus

// NewService builds and starts a simulation service.
func NewService(cfg ServiceConfig) (*Service, error) { return simsvc.New(cfg) }

// SweepPoint is one malloc-cache size evaluated by Sweep.
type SweepPoint struct {
	// Entries is the malloc-cache capacity.
	Entries int
	// MallocSpeedup is the malloc-time improvement over baseline, in
	// percent (negative = slowdown, as undersized caches cause).
	MallocSpeedup float64
	// LookupHitRate and PopHitRate are the accelerator hit ratios.
	LookupHitRate, PopHitRate float64
}

// Sweep runs the Figure 17 experiment for one workload: baseline once,
// then Mallacc at each cache size.
func Sweep(w Workload, entries []int, calls int, seed uint64) []SweepPoint {
	base := Run(RunOptions{Workload: w, Variant: Baseline, Calls: calls, Seed: seed})
	b := float64(base.MallocCycles)
	out := make([]SweepPoint, 0, len(entries))
	for _, n := range entries {
		r := Run(RunOptions{Workload: w, Variant: Mallacc, MCEntries: n, Calls: calls, Seed: seed})
		out = append(out, SweepPoint{
			Entries:       n,
			MallocSpeedup: 100 * (b - float64(r.MallocCycles)) / b,
			LookupHitRate: r.MC.LookupHitRate(),
			PopHitRate:    r.MC.PopHitRate(),
		})
	}
	return out
}

// AreaEstimate returns the Section 6.4 silicon-cost breakdown for a malloc
// cache with the given entry count, in µm² at 28 nm.
func AreaEstimate(entries int) area.Estimate {
	return area.DefaultModel().Estimate(area.DefaultGeometry(entries))
}

// AllocatorKind selects the allocator substrate a System simulates.
type AllocatorKind uint8

const (
	// TCMalloc is the paper's anchor allocator (thread caches of linked
	// free lists, central lists, span page heap).
	TCMalloc AllocatorKind = iota
	// Jemalloc is the jemalloc-style substrate (array-based tcache bins,
	// bitmap slabs), demonstrating the accelerator's generality.
	Jemalloc
	// Hoard is the Hoard-style substrate (per-thread heaps of
	// superblocks with the emptiness invariant); its locked fast path
	// marks the boundary of latency-oriented acceleration.
	Hoard
)

// Config parameterizes an interactive System.
type Config struct {
	// Allocator picks the substrate (default TCMalloc).
	Allocator AllocatorKind
	// Variant picks baseline, Mallacc, or the limit study.
	Variant Variant
	// MCEntries sizes the malloc cache (default 16, the paper's choice).
	MCEntries int
	// IndexModeOff disables the TCMalloc-specific index keying.
	IndexModeOff bool
	// SizedDelete models -fsized-deallocation (default on via
	// DefaultConfig).
	SizedDelete bool
	// SampleInterval is the mean bytes between sampled allocations
	// (0 disables sampling).
	SampleInterval int64
	// Seed makes the system deterministic.
	Seed uint64
}

// DefaultConfig returns a Mallacc-accelerated system with the paper's
// parameters.
func DefaultConfig() Config {
	return Config{
		Variant:        Mallacc,
		MCEntries:      16,
		SizedDelete:    true,
		SampleInterval: tcmalloc.DefaultSampleInterval,
		Seed:           1,
	}
}

// System is an interactive simulated machine: an allocator heap
// (optionally accelerated), a Haswell-like core, and a cache hierarchy.
// Every Malloc and Free returns the call's simulated latency in cycles.
type System struct {
	// TCMalloc backend (nil when Allocator == Jemalloc).
	heap *tcmalloc.Heap
	tc   *tcmalloc.ThreadCache
	// jemalloc backend (nil unless Allocator == Jemalloc).
	jheap *jemalloc.Heap
	jtc   *jemalloc.ThreadCache
	// hoard backend (nil unless Allocator == Hoard).
	hheap *hoard.Heap
	hth   *hoard.ThreadHeap

	em   *uop.Emitter
	core *cpu.Core
	cfg  Config
	reg  *telemetry.Registry
}

// MetricsSnapshot is a point-in-time reading of a system's telemetry
// registry, keyed by dotted metric names ("mc.pop.hits", "l1d.misses",
// "step.pushpop.cycles"). See Snapshot.Get, Value and Delta.
type MetricsSnapshot = telemetry.Snapshot

// Metric is one named value of a MetricsSnapshot.
type Metric = telemetry.Metric

// initTelemetry wires the system's registry: step attribution from the
// core's per-call callback, then every layer's counters.
func (s *System) initTelemetry() {
	s.reg = telemetry.NewRegistry()
	prof := telemetry.NewStepProfiler(harness.StepNames())
	prof.Register(s.reg)
	s.core.SetStepObserver(prof.ObserveCall)
	s.core.RegisterMetrics(s.reg)
	s.core.Memory().RegisterMetrics(s.reg)
	switch {
	case s.hheap != nil:
		s.hheap.RegisterMetrics(s.reg)
	case s.jheap != nil:
		s.jheap.RegisterMetrics(s.reg)
	default:
		s.heap.RegisterMetrics(s.reg)
	}
}

// Telemetry returns the system's full metrics snapshot: allocator tiers,
// caches, core, malloc cache, and per-step cycle attribution.
func (s *System) Telemetry() MetricsSnapshot { return s.reg.Snapshot() }

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) *System {
	if cfg.MCEntries <= 0 {
		cfg.MCEntries = 16
	}
	cCfg := cpu.DefaultConfig()
	if cfg.Variant == Limit {
		cCfg.DropSteps[uop.StepSizeClass] = true
		cCfg.DropSteps[uop.StepSampling] = true
		cCfg.DropSteps[uop.StepPushPop] = true
	}
	s := &System{
		core: cpu.New(cCfg, cachesim.NewDefaultHierarchy()),
		cfg:  cfg,
	}
	mcCfg := core.Config{Entries: cfg.MCEntries, IndexMode: !cfg.IndexModeOff}
	if cfg.Allocator == Hoard {
		hCfg := hoard.DefaultConfig()
		hCfg.Seed = cfg.Seed
		hCfg.SampleInterval = cfg.SampleInterval
		if cfg.Variant == Mallacc {
			hCfg.Mode = tcmalloc.ModeMallacc
			hCfg.MallocCache = core.Config{Entries: cfg.MCEntries}
		}
		s.hheap = hoard.New(hCfg)
		s.hth = s.hheap.NewThread()
		s.em = s.hheap.Em
		s.initTelemetry()
		return s
	}
	if cfg.Allocator == Jemalloc {
		jCfg := jemalloc.DefaultConfig()
		jCfg.Seed = cfg.Seed
		jCfg.SampleInterval = cfg.SampleInterval
		if cfg.Variant == Mallacc {
			jCfg.Mode = tcmalloc.ModeMallacc
			// jemalloc has no class-index hardware: generic raw-size keys.
			jCfg.MallocCache = core.Config{Entries: cfg.MCEntries}
		}
		s.jheap = jemalloc.New(jCfg)
		s.jtc = s.jheap.NewThread()
		s.em = s.jheap.Em
		s.initTelemetry()
		return s
	}
	hCfg := tcmalloc.DefaultConfig()
	hCfg.Seed = cfg.Seed
	hCfg.SizedDelete = cfg.SizedDelete
	hCfg.SampleInterval = cfg.SampleInterval
	if cfg.Variant == Mallacc {
		hCfg.Mode = tcmalloc.ModeMallacc
		hCfg.MallocCache = mcCfg
	}
	s.heap = tcmalloc.New(hCfg)
	s.tc = s.heap.NewThread()
	s.em = s.heap.Em
	s.initTelemetry()
	return s
}

// Malloc allocates size bytes, returning the simulated address and the
// call's latency in cycles.
func (s *System) Malloc(size uint64) (addr, cycles uint64) {
	s.em.Reset()
	switch {
	case s.hheap != nil:
		addr = s.hheap.Malloc(s.hth, size)
	case s.jheap != nil:
		addr = s.jheap.Malloc(s.jtc, size)
	default:
		addr = s.heap.Malloc(s.tc, size)
	}
	return addr, s.core.RunTrace(s.em.Trace())
}

// Free releases addr; pass the allocation's requested size as sizeHint for
// sized delete (0 forces the page-map walk). Returns the call's cycles.
func (s *System) Free(addr, sizeHint uint64) (cycles uint64) {
	s.em.Reset()
	switch {
	case s.hheap != nil:
		s.hheap.Free(s.hth, addr, sizeHint)
	case s.jheap != nil:
		s.jheap.Free(s.jtc, addr, sizeHint)
	default:
		s.heap.Free(s.tc, addr, sizeHint)
	}
	return s.core.RunTrace(s.em.Trace())
}

// Calloc allocates size zeroed bytes, charging the memset (TCMalloc
// substrate only).
func (s *System) Calloc(size uint64) (addr, cycles uint64) {
	if s.heap == nil {
		panic("mallacc: Calloc requires the TCMalloc substrate")
	}
	s.em.Reset()
	addr = s.heap.Calloc(s.tc, size)
	return addr, s.core.RunTrace(s.em.Trace())
}

// Realloc resizes an allocation (in place when the size class allows,
// otherwise allocate-copy-free). oldSize is the sized-delete hint
// (TCMalloc substrate only).
func (s *System) Realloc(addr, oldSize, newSize uint64) (newAddr, cycles uint64) {
	if s.heap == nil {
		panic("mallacc: Realloc requires the TCMalloc substrate")
	}
	s.em.Reset()
	newAddr = s.heap.Realloc(s.tc, addr, oldSize, newSize)
	return newAddr, s.core.RunTrace(s.em.Trace())
}

// Work models application execution: cycles of computation touching the
// given simulated addresses (cache pressure between allocator calls).
func (s *System) Work(cycles uint64, touches []uint64) {
	s.core.AdvanceApp(cycles, touches)
}

// Antagonize evicts the LRU half of each L1/L2 set, like the paper's
// antagonist callback.
func (s *System) Antagonize() { s.core.Memory().Antagonize() }

// ContextSwitch flushes the malloc cache (no writebacks needed — Sec. 4.1)
// and its blocking state.
func (s *System) ContextSwitch() {
	switch {
	case s.hheap != nil:
		s.hheap.FlushMallocCache()
	case s.jheap != nil:
		s.jheap.FlushMallocCache()
	default:
		s.heap.FlushMallocCache()
	}
	s.core.ContextSwitch()
}

// Cycle returns the global simulated clock.
func (s *System) Cycle() uint64 { return s.core.Cycle() }

// HeapStats returns allocator event counts (TCMalloc substrate; see
// JemallocStats for the other backend).
func (s *System) HeapStats() tcmalloc.HeapStats {
	if s.heap == nil {
		return tcmalloc.HeapStats{}
	}
	return s.heap.StatsSnapshot()
}

// JemallocStats returns allocator event counts for the jemalloc substrate.
func (s *System) JemallocStats() jemalloc.HeapStats {
	if s.jheap == nil {
		return jemalloc.HeapStats{}
	}
	return s.jheap.Stats
}

// CPUStats returns core retirement statistics.
func (s *System) CPUStats() cpu.Stats { return s.core.Stats }

// MallocCacheStats returns accelerator hit/miss counts (zero value when
// running the baseline).
func (s *System) MallocCacheStats() core.Stats {
	switch {
	case s.hheap != nil:
		if s.hheap.MC == nil {
			return core.Stats{}
		}
		return s.hheap.MC.Stats
	case s.jheap != nil:
		if s.jheap.MC == nil {
			return core.Stats{}
		}
		return s.jheap.MC.Stats
	default:
		if s.heap.MC == nil {
			return core.Stats{}
		}
		return s.heap.MC.Stats
	}
}

// CheckInvariants panics if any allocator invariant is violated; useful in
// tests of code built on top of the System API.
func (s *System) CheckInvariants() {
	switch {
	case s.hheap != nil:
		s.hheap.CheckInvariants()
	case s.jheap != nil:
		s.jheap.CheckInvariants()
	default:
		s.heap.CheckInvariants()
	}
}

// NewRNG returns a deterministic random generator, for building custom
// drivers that stay reproducible.
func NewRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

// RNG is the deterministic generator NewRNG returns; custom Workloads
// receive one per core.
type RNG = stats.RNG

// App is what a Workload sees of one simulated core: allocator entry points
// plus hooks to model the application in between. In a Cluster each core's
// shard drives its own App.
type App = workload.App

// ClusterConfig parameterizes a multi-core simulation (see
// internal/multicore): N cores, each with a private CPU, cache hierarchy,
// thread cache and malloc cache, sharing one allocator whose central lists
// and page heap charge contention through a spinlock model.
type ClusterConfig struct {
	// Cores is the simulated core count (default 2).
	Cores int
	// Variant picks baseline, Mallacc, the limit study, or the offload
	// core.
	Variant Variant
	// Backend selects the allocator substrate ("" or BackendTCMalloc for
	// the default heap, BackendLockFree for the lock-free stacks).
	Backend string
	// MCEntries sizes each core's malloc cache (default 32).
	MCEntries int
	// Workload generates every core's shard (each with its own RNG).
	Workload Workload
	// CallsPerCore is each shard's allocator-call budget (default 20000).
	CallsPerCore int
	// Seed drives all randomness; same seed + same Cores is byte-identical.
	Seed uint64
	// RemoteFreeProb is the fraction of frees executed on a peer core
	// (default 0.15; negative disables cross-core traffic, which also
	// lets the engine run the simulated cores truly concurrently — see
	// DESIGN.md §18).
	RemoteFreeProb float64
	// Reuse opts in to engine pooling: a finished engine is rewound and
	// reused by the next Run with an identical config, cutting the
	// per-run construction cost without changing a byte of output.
	Reuse bool
}

// ClusterResult is the multi-core measurement set: per-core breakdowns,
// machine-wide aggregates, lock-contention accounting, and the full
// telemetry snapshot (per-core metrics under "core<i>.").
type ClusterResult = multicore.Result

// CoreStats is one core's share of a ClusterResult.
type CoreStats = multicore.CoreStats

// Cluster is a configured multi-core simulation.
type Cluster struct {
	cfg multicore.Config
}

// NewCluster builds a multi-core simulation from cfg.
func NewCluster(cfg ClusterConfig) *Cluster {
	return &Cluster{cfg: multicore.Config{
		Cores:          cfg.Cores,
		Variant:        clusterVariant(cfg.Variant),
		Backend:        cfg.Backend,
		MCEntries:      cfg.MCEntries,
		Workload:       cfg.Workload,
		CallsPerCore:   cfg.CallsPerCore,
		Seed:           cfg.Seed,
		RemoteFreeProb: cfg.RemoteFreeProb,
		Reuse:          cfg.Reuse,
	}}
}

// Run executes every core's shard concurrently (one goroutine per core,
// deterministically interleaved — truly parallel when the config has no
// cross-core frees) and returns the collected result. Repeated Runs are
// byte-identical; with Reuse set they draw the engine from a pool.
func (c *Cluster) Run() *ClusterResult { return multicore.Run(c.cfg) }

// RunCluster is the one-shot form of NewCluster(cfg).Run().
func RunCluster(cfg ClusterConfig) *ClusterResult { return NewCluster(cfg).Run() }

func clusterVariant(v Variant) multicore.Variant {
	switch v {
	case Mallacc:
		return multicore.Mallacc
	case Limit:
		return multicore.Limit
	case Offload:
		return multicore.Offload
	default:
		return multicore.Baseline
	}
}

// SizeClassInfo describes one allocator size class.
type SizeClassInfo struct {
	// Class is the class number (1-based; class 0 is reserved).
	Class int
	// Size is the rounded allocation size in bytes.
	Size uint64
	// SpanPages is the span length used to refill the class.
	SpanPages uint64
	// BatchSize is the central/thread transfer batch.
	BatchSize int
}

// SizeClasses returns the allocator's generated size-class table — the
// same table the paper's Figure 5 machinery indexes into.
func SizeClasses() []SizeClassInfo {
	h := tcmalloc.New(tcmalloc.DefaultConfig())
	sm := h.SizeMap
	out := make([]SizeClassInfo, 0, sm.NumClasses()-1)
	for c := 1; c < sm.NumClasses(); c++ {
		out = append(out, SizeClassInfo{
			Class:     c,
			Size:      sm.ClassSize(uint8(c)),
			SpanPages: sm.ClassPages(uint8(c)),
			BatchSize: sm.NumToMove(uint8(c)),
		})
	}
	return out
}

// SizeClassOf returns the class info a request of the given size maps to,
// and ok=false for large (>256 KiB) requests that bypass the classes.
func SizeClassOf(size uint64) (SizeClassInfo, bool) {
	h := tcmalloc.New(tcmalloc.DefaultConfig())
	c, rounded, ok := h.SizeMap.ClassFor(size)
	if !ok {
		return SizeClassInfo{}, false
	}
	return SizeClassInfo{
		Class:     int(c),
		Size:      rounded,
		SpanPages: h.SizeMap.ClassPages(c),
		BatchSize: h.SizeMap.NumToMove(c),
	}, true
}

// ClassIndex exposes the paper's Figure 5 index computation.
func ClassIndex(size uint64) uint64 { return tcmalloc.ClassIndex(size) }
