package mallacc_test

import (
	"bytes"
	"testing"

	"mallacc"
)

func TestSystemDeterministicAndFunctional(t *testing.T) {
	cfg := mallacc.DefaultConfig()
	a := mallacc.NewSystem(cfg)
	b := mallacc.NewSystem(cfg)
	for i := 0; i < 500; i++ {
		size := uint64(16 + (i%20)*24)
		addrA, cycA := a.Malloc(size)
		addrB, cycB := b.Malloc(size)
		if addrA != addrB || cycA != cycB {
			t.Fatalf("identical systems diverged at call %d: (%#x,%d) vs (%#x,%d)",
				i, addrA, cycA, addrB, cycB)
		}
		if i%2 == 0 {
			if a.Free(addrA, size) != b.Free(addrB, size) {
				t.Fatalf("free cycles diverged at call %d", i)
			}
		}
	}
	a.CheckInvariants()
	b.CheckInvariants()
}

func TestSystemBaselineVsMallaccLatency(t *testing.T) {
	run := func(v mallacc.Variant) float64 {
		cfg := mallacc.DefaultConfig()
		cfg.Variant = v
		cfg.SampleInterval = 0
		s := mallacc.NewSystem(cfg)
		var warm []uint64
		for i := 0; i < 32; i++ {
			a, _ := s.Malloc(64)
			warm = append(warm, a)
		}
		for _, a := range warm {
			s.Free(a, 64)
		}
		var tot uint64
		for i := 0; i < 500; i++ {
			a, c := s.Malloc(64)
			tot += c
			s.Free(a, 64)
		}
		return float64(tot) / 500
	}
	base, acc := run(mallacc.Baseline), run(mallacc.Mallacc)
	if acc >= base {
		t.Fatalf("Mallacc (%.1f) not faster than baseline (%.1f)", acc, base)
	}
	t.Logf("baseline %.1f cycles, mallacc %.1f cycles", base, acc)
}

func TestSystemContextSwitch(t *testing.T) {
	s := mallacc.NewSystem(mallacc.DefaultConfig())
	for i := 0; i < 100; i++ {
		a, _ := s.Malloc(48)
		s.Free(a, 48)
	}
	before := s.MallocCacheStats()
	if before.Flushes != 0 {
		t.Fatal("unexpected early flush")
	}
	s.ContextSwitch()
	if s.MallocCacheStats().Flushes != 1 {
		t.Fatal("context switch did not flush")
	}
	// Still functional after the flush.
	a, _ := s.Malloc(48)
	if a == 0 {
		t.Fatal("allocation after flush failed")
	}
	s.CheckInvariants()
}

func TestSizeClassesAPI(t *testing.T) {
	classes := mallacc.SizeClasses()
	if len(classes) < 60 {
		t.Fatalf("only %d size classes", len(classes))
	}
	if classes[0].Size != 16 {
		t.Errorf("first class size %d, want 16", classes[0].Size)
	}
	if classes[len(classes)-1].Size != 256<<10 {
		t.Errorf("last class size %d, want 256KB", classes[len(classes)-1].Size)
	}
	info, ok := mallacc.SizeClassOf(100)
	if !ok || info.Size < 100 {
		t.Fatalf("SizeClassOf(100): %+v ok=%v", info, ok)
	}
	if _, ok := mallacc.SizeClassOf(1 << 20); ok {
		t.Error("1MB should not have a small class")
	}
	if mallacc.ClassIndex(1024) != 128 {
		t.Error("ClassIndex(1024) != 128")
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := mallacc.RunExperiment("nope", mallacc.ExpOptions{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	rep, err := mallacc.RunExperiment("area", mallacc.ExpOptions{})
	if err != nil || rep == nil || len(rep.Lines) == 0 {
		t.Fatalf("area experiment failed: %v", err)
	}
}

func TestWorkloadRegistryViaFacade(t *testing.T) {
	if len(mallacc.Workloads()) != 15 {
		t.Fatalf("%d workloads, want 15", len(mallacc.Workloads()))
	}
	if _, ok := mallacc.WorkloadByName("xapian.pages"); !ok {
		t.Fatal("xapian.pages missing")
	}
	if _, ok := mallacc.WorkloadByName("server.requests"); !ok {
		t.Fatal("server.requests missing")
	}
}

func TestCustomWorkloadThroughFacade(t *testing.T) {
	w := mallacc.NewWorkload(mallacc.WorkloadConfig{
		WName:    "test.custom",
		Mix:      []mallacc.SizeWeight{{Size: 64, Weight: 1}},
		FreeProb: 1, MaxLive: 100, Sized: true,
		WorkCyclesMin: 10, WorkCyclesMax: 20,
	})
	r := mallacc.Run(mallacc.RunOptions{Workload: w, Variant: mallacc.Mallacc, Calls: 2000, Seed: 1})
	if r.MallocCalls == 0 {
		t.Fatal("custom workload issued nothing")
	}
	if r.MC.LookupHitRate() < 0.95 {
		t.Errorf("single-class workload lookup hit rate %.2f", r.MC.LookupHitRate())
	}
}

func TestAreaEstimateFacade(t *testing.T) {
	e := mallacc.AreaEstimate(16)
	if e.Total() > 1500 || e.Total() < 1200 {
		t.Fatalf("16-entry area %.0f um2", e.Total())
	}
}

func TestLimitVariantFasterThanMallacc(t *testing.T) {
	w, _ := mallacc.WorkloadByName("ubench.tp_small")
	base := mallacc.Run(mallacc.RunOptions{Workload: w, Variant: mallacc.Baseline, Calls: 5000, Seed: 3})
	acc := mallacc.Run(mallacc.RunOptions{Workload: w, Variant: mallacc.Mallacc, Calls: 5000, Seed: 3})
	lim := mallacc.Run(mallacc.RunOptions{Workload: w, Variant: mallacc.Limit, Calls: 5000, Seed: 3})
	if !(lim.MallocCycles < acc.MallocCycles && acc.MallocCycles < base.MallocCycles) {
		t.Fatalf("ordering violated: base=%d acc=%d lim=%d",
			base.MallocCycles, acc.MallocCycles, lim.MallocCycles)
	}
}

func TestJemallocSystemThroughFacade(t *testing.T) {
	run := func(v mallacc.Variant) float64 {
		cfg := mallacc.DefaultConfig()
		cfg.Allocator = mallacc.Jemalloc
		cfg.Variant = v
		cfg.SampleInterval = 0
		s := mallacc.NewSystem(cfg)
		var warm []uint64
		for i := 0; i < 48; i++ {
			a, _ := s.Malloc(96)
			warm = append(warm, a)
		}
		for _, a := range warm {
			s.Free(a, 96)
		}
		var tot uint64
		for i := 0; i < 500; i++ {
			a, c := s.Malloc(96)
			tot += c
			s.Free(a, 96)
		}
		s.CheckInvariants()
		return float64(tot) / 500
	}
	base, acc := run(mallacc.Baseline), run(mallacc.Mallacc)
	if acc >= base {
		t.Fatalf("jemalloc substrate: no speedup (%.1f vs %.1f)", acc, base)
	}
	t.Logf("jemalloc via facade: baseline %.1f, mallacc %.1f cycles", base, acc)
}

func TestSystemCallocRealloc(t *testing.T) {
	s := mallacc.NewSystem(mallacc.DefaultConfig())
	a, cyc := s.Calloc(256)
	if a == 0 || cyc == 0 {
		t.Fatal("calloc failed")
	}
	b, _ := s.Realloc(a, 256, 300)
	if b == 0 {
		t.Fatal("realloc failed")
	}
	s.Free(b, 300)
	s.CheckInvariants()
	// The jemalloc substrate refuses these (documented).
	jcfg := mallacc.DefaultConfig()
	jcfg.Allocator = mallacc.Jemalloc
	js := mallacc.NewSystem(jcfg)
	defer func() {
		if recover() == nil {
			t.Fatal("jemalloc Calloc should panic")
		}
	}()
	js.Calloc(64)
}

func TestRecordReplayDeterministicCycles(t *testing.T) {
	w, _ := mallacc.WorkloadByName("ubench.tp_small")
	tr := mallacc.RecordTrace(w, 3000, 1)
	// Replaying the trace must give the exact per-run cycle totals of
	// running the generator directly with the same seed.
	direct := mallacc.Run(mallacc.RunOptions{Workload: w, Variant: mallacc.Mallacc, Calls: 3000, Seed: 1})
	replay := mallacc.Run(mallacc.RunOptions{Workload: tr, Variant: mallacc.Mallacc, Calls: 3000, Seed: 1})
	if direct.MallocCycles != replay.MallocCycles || direct.FreeCycles != replay.FreeCycles {
		t.Fatalf("replay diverged: %d/%d vs %d/%d",
			replay.MallocCycles, replay.FreeCycles, direct.MallocCycles, direct.FreeCycles)
	}
	// And serialization round-trips through the facade.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mallacc.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	again := mallacc.Run(mallacc.RunOptions{Workload: back, Variant: mallacc.Mallacc, Calls: 3000, Seed: 1})
	if again.MallocCycles != direct.MallocCycles {
		t.Fatalf("serialized replay diverged: %d vs %d", again.MallocCycles, direct.MallocCycles)
	}
}

func TestHoardSystemThroughFacade(t *testing.T) {
	cfg := mallacc.DefaultConfig()
	cfg.Allocator = mallacc.Hoard
	cfg.SampleInterval = 0
	s := mallacc.NewSystem(cfg)
	var addrs []uint64
	for i := 0; i < 200; i++ {
		a, c := s.Malloc(96)
		if a == 0 || c == 0 {
			t.Fatal("hoard malloc failed")
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		s.Free(a, 0)
	}
	s.ContextSwitch()
	if a, _ := s.Malloc(96); a == 0 {
		t.Fatal("post-flush malloc failed")
	}
	s.CheckInvariants()
	if s.MallocCacheStats().Updates == 0 {
		t.Error("hoard system never touched the malloc cache")
	}
}

func TestSweepFacade(t *testing.T) {
	w, _ := mallacc.WorkloadByName("ubench.tp_small")
	pts := mallacc.Sweep(w, []int{2, 8}, 4000, 1)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Entries != 2 || pts[1].Entries != 8 {
		t.Fatal("entry order wrong")
	}
	if pts[0].MallocSpeedup >= pts[1].MallocSpeedup {
		t.Fatalf("2-entry (%.1f%%) should be worse than 8-entry (%.1f%%)",
			pts[0].MallocSpeedup, pts[1].MallocSpeedup)
	}
	if pts[1].LookupHitRate < 0.9 {
		t.Errorf("8-entry lookup hit rate %.2f", pts[1].LookupHitRate)
	}
}
