#!/usr/bin/env bash
# bench.sh — the simulator's reproducible performance baseline.
#
# Full mode (default):
#   - runs every microbenchmark suite (cpu scheduler, cache hierarchy,
#     tcmalloc fast path, multicore engine, simulation service) with
#     -count=5 -benchmem,
#   - summarizes with benchstat when it is installed (no hard dependency),
#   - times one end-to-end fig13 sweep,
#   - writes BENCH_baseline.json with the measured numbers next to the
#     frozen pre-rewrite reference, and
#   - gates on the core per-cycle microbenchmark: >=2x vs the reference and
#     zero allocations per scheduled call (BENCH_NO_GATE=1 skips).
#
# Smoke mode (--smoke, used by CI): one iteration of every benchmark, no
# file writes, no gating — it only proves the benchmarks still compile and
# run.
#
# Environment: BENCH_OUT (output path, default BENCH_baseline.json),
# BENCH_COUNT (repetitions, default 5), BENCH_NO_GATE=1.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
for a in "$@"; do
    case "$a" in
        --smoke) MODE=smoke ;;
        *) echo "usage: $0 [--smoke]" >&2; exit 2 ;;
    esac
done

PKGS=(./internal/cpu ./internal/cachesim ./internal/tcmalloc ./internal/multicore ./internal/simsvc ./internal/lockfree ./internal/offload)
OUT=${BENCH_OUT:-BENCH_baseline.json}
COUNT=${BENCH_COUNT:-5}

if [ "$MODE" = smoke ]; then
    exec go test -run '^$' -bench . -benchmem -benchtime=1x "${PKGS[@]}"
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchmem -count="$COUNT" "${PKGS[@]}" | tee "$RAW"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat =="
    benchstat "$RAW"
fi

echo
echo "== end-to-end: fig13 sweep (seed 1) =="
T0=$(date +%s.%N)
go run ./cmd/mallacc-bench -run fig13 -seed 1 >/dev/null
T1=$(date +%s.%N)
FIG13_SECS=$(awk -v a="$T0" -v b="$T1" 'BEGIN{printf "%.2f", b-a}')
echo "fig13 wall time: ${FIG13_SECS}s"

awk -v out="$OUT" -v count="$COUNT" -v fig13="$FIG13_SECS" \
    -v gover="$(go version | awk '{print $3}')" \
    -v nogate="${BENCH_NO_GATE:-0}" '
# The frozen reference: the same benchmark bodies run against the tree
# before the zero-allocation scheduler rewrite (map-based reservation
# tables, map branch predictor, unpooled emitters). ns/op, best of 5 on the
# machine that produced the checked-in baseline. Re-measuring them requires
# checking out the pre-rewrite commit, so they are constants here.
BEGIN {
    before["BenchmarkRunTraceFastPath"]    = 3481
    before["BenchmarkRunTraceColdMisses"]  = 5183
    before["BenchmarkRunTraceMallacc"]     = 1014
    before["BenchmarkBranchPredictor"]     = 16.07
    before["BenchmarkHierarchyLoadL1Hit"]  = 18.87
    before["BenchmarkHierarchyLoadStream"] = 136.5
    before["BenchmarkCacheLookupHit"]      = 9.106
    before["BenchmarkFastAllocFree"]       = 508.4
    before["BenchmarkFastAllocFreeMallacc"] = 588.1
    before["BenchmarkFastAllocFreeNoEmit"] = 100.1
    before["BenchmarkEngine4CoreBaseline"] = 33123087
    before["BenchmarkEngine4CoreMallacc"]  = 21438757
    before["BenchmarkSubmitCachedHit"]     = 6551
    before["BenchmarkJobKey"]              = 3468
    # The parallel engine benchmarks have no pre-rewrite ancestor; their
    # reference is the serialized (token-rotation) scheduler running the
    # identical config on the same tree, measured on the baseline machine.
    # On a single-core host the parallel path is expected to read slightly
    # *slower* than this reference (goroutine + barrier overhead with no
    # hardware parallelism to reclaim it); the gate below therefore bounds
    # the overhead rather than demanding a speedup.
    before["BenchmarkEngineParallel4Core"]  = 3492019
    before["BenchmarkEngineParallel8Core"]  = 6466754
    before["BenchmarkEngineParallel16Core"] = 13297603
    # Pre-pooling reference for the engine-lifecycle gate: the same
    # benchmarks on this tree before engine pooling and the hot-path
    # rework (fresh engine per run, per-slice cache metadata, map-backed
    # histograms). ns/op plus allocs/op, measured on the baseline machine.
    prepool["BenchmarkEngine4CoreBaseline"] = 9070000
    prepool["BenchmarkEngine4CoreMallacc"]  = 9586220
    prepool_allocs["BenchmarkEngine4CoreBaseline"] = 1548
    prepool_allocs["BenchmarkEngine4CoreMallacc"]  = 1734
    fig13_before = 18.5
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1; ns[name] = 1e308 }
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i + 0; u = $(i + 1)
        if (u == "ns/op")          { if (v < ns[name]) ns[name] = v }
        else if (u == "B/op")      { if (v > bpo[name]) bpo[name] = v }
        else if (u == "allocs/op") { if (v > apo[name]) apo[name] = v }
    }
}
END {
    printf "{\n" > out
    printf "  \"schema\": \"mallacc-bench-baseline/v1\",\n" >> out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"go_version\": \"%s\",\n", gover >> out
    printf "  \"count\": %d,\n", count >> out
    printf "  \"note\": \"before = pre-rewrite tree (cycle-keyed map scheduler, map branch predictor, unpooled uop emitters); after = this tree. ns_per_op is best-of-count; bytes/allocs per op are the worst observed. Shared-VM noise floor is roughly +/-30 percent run to run, so sub-2x ratios on benchmarks whose code did not change (cachesim, trace generation, simsvc) are host noise, not signal; the gate benchmark exercises exactly the rewritten scheduler. Exceptions: BenchmarkEngineParallel* compare against the serialized token-rotation scheduler on the same tree (expect ~1x on a single-core host), and engine_gate compares BenchmarkEngine4Core* against the pre-pooling tree.\",\n" >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %g, \"bytes_per_op\": %d, \"allocs_per_op\": %d", \
            name, ns[name], bpo[name] + 0, apo[name] + 0 >> out
        if (name in before) {
            printf ", \"before_ns_per_op\": %g, \"speedup\": %.2f", \
                before[name], before[name] / ns[name] >> out
        }
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  },\n" >> out
    printf "  \"end_to_end\": {\"fig13_wall_seconds\": %s, \"fig13_wall_seconds_before\": %g, \"speedup\": %.2f},\n", \
        fig13, fig13_before, fig13_before / fig13 >> out
    core = "BenchmarkRunTraceFastPath"
    sp = (core in ns && ns[core] < 1e308) ? before[core] / ns[core] : 0
    pass = (sp >= 2.0 && apo[core] + 0 == 0) ? "true" : "false"
    printf "  \"gate\": {\"benchmark\": \"%s\", \"min_speedup\": 2.0, \"speedup\": %.2f, \"allocs_per_op\": %d, \"pass\": %s}\n", \
        core, sp, apo[core] + 0, pass >> out

    # Engine-lifecycle gate: pooled, rewound engines must run the 4-core
    # shard >=2x faster than the pre-pooling tree with allocs/op cut >=10x.
    eng_pass = "true"
    printf "  ,\"engine_gate\": {\"min_speedup\": 2.0, \"max_allocs_frac\": 0.1, \"benchmarks\": {" >> out
    efirst = 1
    for (name in prepool) {
        esp = (name in ns && ns[name] < 1e308) ? prepool[name] / ns[name] : 0
        ecap = int(prepool_allocs[name] / 10)
        eok = (esp >= 2.0 && apo[name] + 0 <= ecap) ? "true" : "false"
        if (eok != "true") eng_pass = "false"
        printf "%s\"%s\": {\"speedup\": %.2f, \"allocs_per_op\": %d, \"max_allocs_per_op\": %d, \"pass\": %s}", \
            (efirst ? "" : ", "), name, esp, apo[name] + 0, ecap, eok >> out
        efirst = 0
        printf "engine gate: %s %.2fx vs pre-pooling (floor 2.0x), %d allocs/op (cap %d): %s\n", \
            name, esp, apo[name] + 0, ecap, eok
    }
    printf "}, \"pass\": %s}\n", eng_pass >> out

    # Parallel-scheduler gate: the barrier-phase path must stay within 1.5x
    # of the serialized reference (it is near 1x on a single-core host and
    # well under on real multicore), and its rewind path must stay lean.
    par_ceiling[4] = 200; par_ceiling[8] = 350; par_ceiling[16] = 650
    par_pass = "true"
    printf "  ,\"parallel_gate\": {\"max_ns_ratio_vs_serialized\": 1.5, \"benchmarks\": {" >> out
    pfirst = 1
    for (j = 4; j <= 16; j *= 2) {
        name = "BenchmarkEngineParallel" j "Core"
        ratio = (name in ns && ns[name] < 1e308) ? ns[name] / before[name] : 1e9
        pok = (ratio <= 1.5 && apo[name] + 0 <= par_ceiling[j]) ? "true" : "false"
        if (pok != "true") par_pass = "false"
        printf "%s\"%s\": {\"ns_ratio_vs_serialized\": %.2f, \"allocs_per_op\": %d, \"max_allocs_per_op\": %d, \"pass\": %s}", \
            (pfirst ? "" : ", "), name, ratio, apo[name] + 0, par_ceiling[j], pok >> out
        pfirst = 0
        printf "parallel gate: %s %.2fx serialized (cap 1.5x), %d allocs/op (cap %d): %s\n", \
            name, ratio, apo[name] + 0, par_ceiling[j], pok
    }
    printf "}, \"pass\": %s}\n", par_pass >> out

    printf "}\n" >> out
    close(out)
    printf "\nwrote %s\n", out
    printf "gate: %s speedup %.2fx (floor 2.0x), %d allocs/op\n", core, sp, apo[core] + 0
    if ((pass != "true" || eng_pass != "true" || par_pass != "true") && nogate != "1") {
        print "BENCH GATE FAILED (set BENCH_NO_GATE=1 to bypass)" > "/dev/stderr"
        exit 1
    }
}
' "$RAW"
