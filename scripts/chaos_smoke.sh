#!/usr/bin/env bash
# chaos_smoke.sh — fault-injection smoke test for the service stack.
#
# Two parts:
#   1. The in-process chaos harness (internal/faults/chaostest): baseline
#      reports fault-free, replays the same specs under seeded faults on
#      job execution / cache IO / HTTP, and asserts byte-identical
#      reports, breaker open + recovery, retries, and quarantine healing.
#   2. The real binaries end-to-end: mallacc-serve booted with -faults,
#      driven by mallacc-sim -serve with client-side faults armed via
#      $MALLACC_FAULTS. Two runs of the same spec must print identical
#      reports despite both sides of the HTTP hop failing.
#
# Needs: go. The harness is deterministic per seed (default 7; pass one
# as $1 or set CHAOS_SEED).
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${1:-${CHAOS_SEED:-7}}"

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "chaos-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$workdir/serve.log" >&2 || true
    exit 1
}

# --- 1. in-process chaos harness ----------------------------------------
echo "chaos-smoke: running chaostest (seed $seed)"
go run ./internal/faults/chaostest "$seed" || fail "chaostest failed"

# --- 2. real binaries under faults on both sides of the hop -------------
echo "chaos-smoke: building binaries"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve
go build -o "$workdir/mallacc-sim" ./cmd/mallacc-sim

"$workdir/mallacc-serve" -h 2>&1 | grep -q -- '-faults' \
    || fail "mallacc-serve -h does not document -faults"

# Server: transient failures on job execution and cache IO. Client (via
# env): transport-looking failures on its outbound requests.
server_faults="seed=$seed;simsvc.exec,prob=0.3;simsvc.cache.read,prob=0.2;simsvc.cache.write,prob=0.2"
client_faults="seed=$seed;remote.http,prob=0.2"

"$workdir/mallacc-serve" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" \
    -faults "$server_faults" >"$workdir/serve.log" 2>&1 &
server_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^mallacc-serve listening on \(http:\/\/[0-9.:]*\)$/\1/p' \
        "$workdir/serve.log" | head -n1)
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its listen address"
grep -q "FAULT INJECTION ACTIVE" "$workdir/serve.log" \
    || fail "daemon did not announce fault injection"
echo "chaos-smoke: faulted daemon up at $base"

run_sim() {
    MALLACC_FAULTS="$client_faults" "$workdir/mallacc-sim" \
        -serve "$base" -workload ubench.gauss -variant mallacc \
        -calls 20000 -seed 1 -format json
}
run_sim >"$workdir/out1.json" 2>"$workdir/err1.log" \
    || fail "first faulted run failed: $(cat "$workdir/err1.log")"
run_sim >"$workdir/out2.json" 2>"$workdir/err2.log" \
    || fail "second faulted run failed: $(cat "$workdir/err2.log")"
cmp -s "$workdir/out1.json" "$workdir/out2.json" \
    || fail "faulted runs printed different reports"
[ -s "$workdir/out1.json" ] || fail "faulted run printed an empty report"
echo "chaos-smoke: two faulted end-to-end runs byte-identical"

kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
[ "$rc" -eq 0 ] || fail "faulted daemon exited $rc on SIGTERM"

echo "chaos-smoke: PASS"
