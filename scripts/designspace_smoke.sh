#!/usr/bin/env bash
# designspace_smoke.sh — determinism smoke test of the design-space study.
#
#   1. runs the designspace experiment (all cataloged strategies at 1..16
#      cores, full telemetry) twice at seed 1 and requires the two JSON
#      reports to be byte-identical,
#   2. checks every cataloged strategy actually contributed runs,
#   3. when the pinned digest results/metrics/designspace.json exists,
#      requires today's report to match it byte-for-byte (regenerate with
#      `make baseline` after an intentional simulator change).
#
# Needs: go. jq is used for nicer diagnostics when present.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

fail() {
    echo "designspace-smoke: FAIL: $*" >&2
    exit 1
}

echo "designspace-smoke: run 1"
go run ./cmd/mallacc-bench -run designspace -metrics -format json -seed 1 \
    > "$workdir/a.json"
echo "designspace-smoke: run 2"
go run ./cmd/mallacc-bench -run designspace -metrics -format json -seed 1 \
    > "$workdir/b.json"

cmp -s "$workdir/a.json" "$workdir/b.json" \
    || fail "two seed-1 runs differ (determinism contract broken)"
echo "designspace-smoke: seed-1 runs byte-identical ($(wc -c <"$workdir/a.json") bytes)"

for strategy in stock mallacc offload lockfree lockfree+mallacc; do
    grep -q "/$strategy/" "$workdir/a.json" \
        || fail "strategy $strategy missing from the report"
done
echo "designspace-smoke: all 5 strategies present"

pinned=results/metrics/designspace.json
if [ -f "$pinned" ]; then
    if ! cmp -s "$workdir/a.json" "$pinned"; then
        if command -v jq >/dev/null 2>&1; then
            diff <(jq -S . "$pinned") <(jq -S . "$workdir/a.json") | head -40 >&2 || true
        fi
        fail "report drifted from pinned $pinned (regenerate with 'make baseline' if intentional)"
    fi
    echo "designspace-smoke: matches pinned $pinned"
else
    echo "designspace-smoke: no pinned digest at $pinned (run 'make baseline' to create it)"
fi

echo "designspace-smoke: PASS"
