#!/usr/bin/env bash
# fleet_chaos.sh — chaos test for the sharded simulation fleet.
#
# Runs the same parameter-grid sweep twice through mallacc-ctl:
#   1. a clean 3-node fleet, no faults — the reference report set;
#   2. a fresh fleet with seeded fault injection on every hop — the
#      coordinator fails fleet.proxy requests, the nodes fail job
#      execution and fleet.fill peer fetches — and one node kill -9'd
#      mid-sweep to force live failover.
# Reports are content-addressed (<job-key>.json), so the two output
# directories must match file-for-file and byte-for-byte: retries,
# failover, and peer-fill misses may cost time, never change answers.
#
# Needs: go, curl, jq. Deterministic per seed (default 7; pass one as
# $1 or set CHAOS_SEED).
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${1:-${CHAOS_SEED:-7}}"
grid='workload=ubench.gauss,ubench.tp_small;variant=baseline,mallacc;seed=5,6;calls=8000'
points=8

workdir=$(mktemp -d)
declare -A node_pid
coord_pid=""
cleanup() {
    for n in "${!node_pid[@]}"; do kill -9 "${node_pid[$n]}" 2>/dev/null || true; done
    [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "fleet-chaos: FAIL: $*" >&2
    for log in "$workdir"/*.log; do
        echo "--- $(basename "$log") ---" >&2
        tail -n 40 "$log" >&2 || true
    done
    exit 1
}

echo "fleet-chaos: building binaries"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve
go build -o "$workdir/mallacc-coord" ./cmd/mallacc-coord
go build -o "$workdir/mallacc-ctl" ./cmd/mallacc-ctl

port_free() { ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; }
pick_ports() {
    local base try p
    for try in $(seq 1 20); do
        base=$((18000 + RANDOM % 20000))
        for p in 0 1 2 3; do port_free "$((base+p))" || continue 2; done
        echo "$base"
        return 0
    done
    return 1
}

# start_fleet <label> <node faults spec> <coord faults spec>
# Boots 3 memory-only nodes plus a coordinator and waits for 3/3 live.
# Sets $coord; pids land in node_pid[]/coord_pid for kill/cleanup.
start_fleet() {
    local label=$1 node_faults=$2 coord_faults=$3
    local base fleet_spec n port live
    base=$(pick_ports) || fail "no free port block found"
    fleet_spec="n1=127.0.0.1:$((base+1)),n2=127.0.0.1:$((base+2)),n3=127.0.0.1:$((base+3))"
    for n in 1 2 3; do
        port=$((base+n))
        "$workdir/mallacc-serve" -addr "127.0.0.1:$port" \
            -fleet "$fleet_spec" -self "n$n" \
            ${node_faults:+-faults "$node_faults"} \
            >"$workdir/$label-n$n.log" 2>&1 &
        node_pid[n$n]=$!
    done
    "$workdir/mallacc-coord" -addr "127.0.0.1:$base" -nodes "$fleet_spec" \
        -probe-every 200ms ${coord_faults:+-faults "$coord_faults"} \
        >"$workdir/$label-coord.log" 2>&1 &
    coord_pid=$!
    coord="http://127.0.0.1:$base"
    for _ in $(seq 1 100); do
        live=$(curl -fsS "$coord/v1/healthz" 2>/dev/null | jq -r .live || echo 0)
        [ "$live" = 3 ] && break
        sleep 0.1
    done
    [ "$live" = 3 ] || fail "$label fleet never reached 3 live nodes (live=$live)"
}

stop_fleet() {
    local n
    for n in "${!node_pid[@]}"; do
        kill -9 "${node_pid[$n]}" 2>/dev/null || true
        wait "${node_pid[$n]}" 2>/dev/null || true
        unset "node_pid[$n]"
    done
    kill "$coord_pid" 2>/dev/null || true
    wait "$coord_pid" 2>/dev/null || true
    coord_pid=""
}

# --- 1. clean reference sweep -------------------------------------------
echo "fleet-chaos: reference sweep on a clean fleet ($points points)"
start_fleet clean "" ""
"$workdir/mallacc-ctl" -coord "$coord" sweep -grid "$grid" \
    -out "$workdir/reports_clean" -parallel 4 \
    >"$workdir/sweep_clean.log" 2>&1 || fail "clean sweep failed"
got=$(ls "$workdir/reports_clean" | wc -l)
[ "$got" = "$points" ] || fail "clean sweep wrote $got reports, want $points"
stop_fleet
echo "fleet-chaos: clean sweep done"

# --- 2. faulted sweep with a mid-sweep node kill ------------------------
node_faults="seed=$seed;simsvc.exec,prob=0.15;fleet.fill,prob=0.3"
coord_faults="seed=$seed;fleet.proxy,prob=0.15"
echo "fleet-chaos: faulted sweep (node: $node_faults | coord: $coord_faults)"
start_fleet chaos "$node_faults" "$coord_faults"
grep -q "FAULT INJECTION ACTIVE" "$workdir/chaos-coord.log" \
    || fail "coordinator did not announce fault injection"

mkdir -p "$workdir/reports_chaos"
"$workdir/mallacc-ctl" -coord "$coord" sweep -grid "$grid" \
    -out "$workdir/reports_chaos" -parallel 2 -retries 4 \
    >"$workdir/sweep_chaos.log" 2>&1 &
sweep_pid=$!

# Kill a node once the sweep is demonstrably under way (first report
# written), so failover happens with work in flight.
for _ in $(seq 1 300); do
    [ -n "$(ls -A "$workdir/reports_chaos" 2>/dev/null)" ] && break
    kill -0 "$sweep_pid" 2>/dev/null || break
    sleep 0.1
done
victim=n2
kill -9 "${node_pid[$victim]}" 2>/dev/null
wait "${node_pid[$victim]}" 2>/dev/null || true
unset "node_pid[$victim]"
echo "fleet-chaos: killed $victim mid-sweep"

wait "$sweep_pid" || fail "faulted sweep failed: $(tail -n 20 "$workdir/sweep_chaos.log")"
got=$(ls "$workdir/reports_chaos" | wc -l)
[ "$got" = "$points" ] || fail "faulted sweep wrote $got reports, want $points"
stop_fleet
echo "fleet-chaos: faulted sweep completed all $points points despite the kill"

# --- 3. the two report sets must be byte-identical ----------------------
mkdir -p "$workdir/norm_clean" "$workdir/norm_chaos"
for f in "$workdir/reports_clean"/*.json; do
    jq -S . "$f" >"$workdir/norm_clean/$(basename "$f")"
done
for f in "$workdir/reports_chaos"/*.json; do
    jq -S . "$f" >"$workdir/norm_chaos/$(basename "$f")"
done
diff -r "$workdir/norm_clean" "$workdir/norm_chaos" \
    || fail "faulted sweep reports differ from the clean reference"
echo "fleet-chaos: all $points reports byte-identical to the clean reference"

echo "fleet-chaos: PASS"
