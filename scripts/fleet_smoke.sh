#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke test for the sharded simulation fleet.
#
# Boots three memory-only mallacc-serve nodes plus a mallacc-coord fronting
# them, then drives the whole fleet surface through mallacc-ctl and curl:
#   1. membership: ctl status reports 3/3 nodes live,
#   2. an uncached job routes to its owning shard and the report is
#      byte-identical to a standalone single-node run of the same spec,
#   3. an identical resubmission is answered from the owner's cache,
#   4. the coordinator's OpenMetrics scrape lints clean and carries the
#      fleet.* router families,
#   5. kill the owning node: a resubmission fails over and recomputes a
#      byte-identical report on another shard,
#   6. restart the owner cold (memory-only cache died with it): the next
#      submission peer-fills from the shard that recomputed, observed via
#      fleet.peerfill.hits on the owner's own metrics,
#   7. drain/undrain through ctl redirects new work and restores it.
#
# Needs: go, curl, jq.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
declare -A node_pid node_port
coord_pid=""
cleanup() {
    for n in "${!node_pid[@]}"; do kill "${node_pid[$n]}" 2>/dev/null || true; done
    [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
    [ -n "${ref_pid:-}" ] && kill "$ref_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "fleet-smoke: FAIL: $*" >&2
    for log in "$workdir"/*.log; do
        echo "--- $(basename "$log") ---" >&2
        tail -n 40 "$log" >&2 || true
    done
    exit 1
}

echo "fleet-smoke: building binaries"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve
go build -o "$workdir/mallacc-coord" ./cmd/mallacc-coord
go build -o "$workdir/mallacc-ctl" ./cmd/mallacc-ctl

# Pick a free port block: probe with bash's /dev/tcp (connect succeeding
# means the port is taken).
port_free() { ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; }
pick_ports() {
    local base try
    for try in $(seq 1 20); do
        base=$((18000 + RANDOM % 20000))
        if port_free "$base" && port_free "$((base+1))" \
            && port_free "$((base+2))" && port_free "$((base+3))"; then
            echo "$base"
            return 0
        fi
    done
    return 1
}
base_port=$(pick_ports) || fail "no free port block found"
coord_port=$base_port
node_port[n1]=$((base_port+1))
node_port[n2]=$((base_port+2))
node_port[n3]=$((base_port+3))
fleet_spec="n1=127.0.0.1:${node_port[n1]},n2=127.0.0.1:${node_port[n2]},n3=127.0.0.1:${node_port[n3]}"

# Memory-only nodes (no -cache-dir): killing one provably loses its cache,
# which is what makes the peer-fill leg meaningful.
start_node() {
    local name=$1
    "$workdir/mallacc-serve" -addr "127.0.0.1:${node_port[$name]}" \
        -fleet "$fleet_spec" -self "$name" \
        >>"$workdir/$name.log" 2>&1 &
    node_pid[$name]=$!
}
for n in n1 n2 n3; do start_node "$n"; done

"$workdir/mallacc-coord" -addr "127.0.0.1:$coord_port" -nodes "$fleet_spec" \
    -probe-every 200ms >"$workdir/coord.log" 2>&1 &
coord_pid=$!
coord="http://127.0.0.1:$coord_port"
ctl() { "$workdir/mallacc-ctl" -coord "$coord" "$@"; }

# Wait until the whole fleet is probed live.
for _ in $(seq 1 100); do
    live=$(curl -fsS "$coord/v1/healthz" 2>/dev/null | jq -r .live || echo 0)
    [ "$live" = 3 ] && break
    sleep 0.1
done
[ "$live" = 3 ] || fail "fleet never reached 3 live nodes (live=$live)"

# --- 1. membership via ctl ----------------------------------------------
ctl status >"$workdir/status.txt" || fail "ctl status failed"
grep -q "3/3 nodes live" "$workdir/status.txt" || fail "ctl status does not show 3/3 live"
echo "fleet-smoke: 3/3 nodes live"

# --- 2. uncached job through the coordinator vs standalone node ---------
spec='{"workload":"ubench.gauss","variant":"mallacc","calls":20000,"seed":3}'
job=$(curl -fsS -X POST -d "$spec" "$coord/v1/jobs") || fail "submit failed"
id=$(echo "$job" | jq -r .id)
owner=$(echo "$job" | jq -r .node)
echo "$id" | grep -q "^$owner\." || fail "job id $id lacks node prefix $owner"
for _ in $(seq 1 300); do
    job=$(curl -fsS "$coord/v1/jobs/$id") || fail "poll failed"
    state=$(echo "$job" | jq -r .state)
    case "$state" in
        done) break ;;
        failed|canceled) fail "job finished $state: $(echo "$job" | jq -r .error)" ;;
    esac
    sleep 0.1
done
[ "$state" = done ] || fail "fleet job never finished (last state: $state)"
echo "$job" | jq -S .report >"$workdir/report_fleet.json"
echo "fleet-smoke: job $id done on $owner"

# Standalone reference node, no fleet wiring at all.
"$workdir/mallacc-serve" -addr 127.0.0.1:0 >"$workdir/ref.log" 2>&1 &
ref_pid=$!
ref=""
for _ in $(seq 1 100); do
    ref=$(sed -n 's/^mallacc-serve listening on \(http:\/\/[0-9.:]*\)$/\1/p' \
        "$workdir/ref.log" | head -n1)
    [ -n "$ref" ] && break
    sleep 0.1
done
[ -n "$ref" ] || fail "reference daemon never reported its address"
rjob=$(curl -fsS -X POST -d "$spec" "$ref/v1/jobs") || fail "reference submit failed"
rid=$(echo "$rjob" | jq -r .id)
for _ in $(seq 1 300); do
    rjob=$(curl -fsS "$ref/v1/jobs/$rid") || fail "reference poll failed"
    [ "$(echo "$rjob" | jq -r .state)" = done ] && break
    sleep 0.1
done
echo "$rjob" | jq -S .report >"$workdir/report_ref.json"
cmp -s "$workdir/report_fleet.json" "$workdir/report_ref.json" \
    || fail "fleet report differs from the single-node report"
echo "fleet-smoke: fleet report byte-identical to single-node run"

# --- 3. identical resubmission is a cache hit on the owner ---------------
job2=$(curl -fsS -X POST -d "$spec" "$coord/v1/jobs") || fail "resubmit failed"
[ "$(echo "$job2" | jq -r .cached)" = true ] || fail "resubmission not served from cache"
[ "$(echo "$job2" | jq -r .node)" = "$owner" ] || fail "cached resubmission left the owner"
echo "$job2" | jq -S .report >"$workdir/report_cached.json"
cmp -s "$workdir/report_fleet.json" "$workdir/report_cached.json" \
    || fail "cached report not byte-identical"
echo "fleet-smoke: cached resubmission byte-identical on $owner"

# --- 4. coordinator OpenMetrics scrape lints clean ----------------------
curl -fsS "$coord/v1/metrics?format=openmetrics" \
    | go run ./scripts/promlint -require mallacc_fleet_proxy_requests \
    || fail "coordinator openmetrics failed promlint"
reqs=$(curl -fsS "$coord/v1/metrics" | jq '."fleet.proxy.requests"')
[ "$reqs" -ge 2 ] || fail "fleet.proxy.requests = $reqs, want >= 2"
echo "fleet-smoke: coordinator openmetrics lints clean (proxy requests: $reqs)"

# --- 5. kill the owner: failover recomputes byte-identically -------------
kill -9 "${node_pid[$owner]}" 2>/dev/null
wait "${node_pid[$owner]}" 2>/dev/null || true
unset "node_pid[$owner]"
job3=$(curl -fsS -X POST -d "$spec" "$coord/v1/jobs") || fail "failover submit failed"
id3=$(echo "$job3" | jq -r .id)
node3=$(echo "$job3" | jq -r .node)
[ "$node3" != "$owner" ] || fail "failover submission routed to the dead owner"
for _ in $(seq 1 300); do
    job3=$(curl -fsS "$coord/v1/jobs/$id3") || fail "failover poll failed"
    [ "$(echo "$job3" | jq -r .state)" = done ] && break
    sleep 0.1
done
echo "$job3" | jq -S .report >"$workdir/report_failover.json"
cmp -s "$workdir/report_fleet.json" "$workdir/report_failover.json" \
    || fail "failover recompute not byte-identical"
echo "fleet-smoke: owner $owner killed, $node3 recomputed byte-identically"

# --- 6. restart the owner cold: peer fill from the recomputing shard -----
start_node "$owner"
for _ in $(seq 1 100); do
    ok=$(curl -fsS "$coord/v1/healthz" \
        | jq -r --arg n "$owner" '.nodes[] | select(.name==$n) | (.healthy and .breaker != "open")')
    [ "$ok" = true ] && break
    sleep 0.1
done
[ "$ok" = true ] || fail "restarted owner never came back healthy"
job4=$(curl -fsS -X POST -d "$spec" "$coord/v1/jobs") || fail "post-restart submit failed"
[ "$(echo "$job4" | jq -r .node)" = "$owner" ] || fail "post-restart submission avoided the owner"
[ "$(echo "$job4" | jq -r .cached)" = true ] || fail "post-restart submission was not served as cached"
echo "$job4" | jq -S .report >"$workdir/report_fill.json"
cmp -s "$workdir/report_fleet.json" "$workdir/report_fill.json" \
    || fail "peer-filled report not byte-identical"
hits=$(curl -fsS "http://127.0.0.1:${node_port[$owner]}/v1/metrics" | jq '."fleet.peerfill.hits"')
[ "$hits" -ge 1 ] || fail "fleet.peerfill.hits = $hits on $owner, want >= 1"
echo "fleet-smoke: restarted $owner peer-filled from the fleet (hits: $hits)"

# --- 7. drain / undrain through ctl --------------------------------------
ctl drain "$owner" 2>"$workdir/drain.txt" || fail "ctl drain failed"
draining=""
for _ in $(seq 1 50); do
    if ctl status 2>/dev/null | grep -q "$owner .*draining"; then
        draining=yes
        break
    fi
    sleep 0.1
done
[ "$draining" = yes ] || fail "ctl status does not show $owner draining"
job5=$(curl -fsS -X POST -d "$spec" "$coord/v1/jobs") || fail "submit while drained failed"
[ "$(echo "$job5" | jq -r .node)" != "$owner" ] || fail "drained node still receives work"
ctl undrain "$owner" 2>>"$workdir/drain.txt" || fail "ctl undrain failed"
for _ in $(seq 1 50); do
    live=$(curl -fsS "$coord/v1/healthz" 2>/dev/null | jq -r .live || echo 0)
    [ "$live" = 3 ] && break
    sleep 0.1
done
[ "$live" = 3 ] || fail "fleet not 3/3 live after undrain (live=$live)"
ctl status | grep -q "3/3 nodes live" || fail "ctl status not 3/3 live after undrain"
echo "fleet-smoke: drain redirected work off $owner, undrain restored it"

echo "fleet-smoke: PASS"
