#!/usr/bin/env bash
# membership_chaos.sh — chaos test for dynamic fleet membership.
#
# Reference leg: a static 3-node fleet (-nodes seed, no join protocol)
# sweeps the parameter grid; its report set is the ground truth.
#
# Churn leg: a dynamic fleet — two gossiping coordinators, three nodes
# that join themselves at startup (-coord, no -nodes anywhere) — runs the
# same sweep while the membership is deliberately shaken:
#   - a fourth node joins mid-sweep,
#   - one node is killed -9 (the failure detector must declare it dead
#     and rebuild the ring),
#   - one coordinator is killed and restarted cold (it must relearn the
#     fleet from node heartbeats and peer gossip).
# The sweep must still complete with a report set byte-identical to the
# static reference: churn may cost time, never change answers.
#
# Drain leg: after a warm-up sweep seeds every report onto its ring
# owner, one node is drained with --handoff (its cache is pushed to the
# new owners before it deregisters). A final sweep through the restarted
# coordinator must then be answered entirely from caches and peer fills:
# simsvc.runcache.misses — which moves only when a simulation actually
# executes — must stay flat on every survivor. Graceful departures
# recompute nothing.
#
# Needs: go, curl, jq.
set -euo pipefail
cd "$(dirname "$0")/.."

grid='workload=ubench.gauss,ubench.tp_small;variant=baseline,mallacc;seed=5,6;calls=8000'
points=8

workdir=$(mktemp -d)
declare -A node_pid node_port
coordA_pid=""
coordB_pid=""
cleanup() {
    for n in "${!node_pid[@]}"; do kill -9 "${node_pid[$n]}" 2>/dev/null || true; done
    [ -n "$coordA_pid" ] && kill "$coordA_pid" 2>/dev/null || true
    [ -n "$coordB_pid" ] && kill "$coordB_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "membership-chaos: FAIL: $*" >&2
    for log in "$workdir"/*.log; do
        echo "--- $(basename "$log") ---" >&2
        tail -n 40 "$log" >&2 || true
    done
    exit 1
}

echo "membership-chaos: building binaries"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve
go build -o "$workdir/mallacc-coord" ./cmd/mallacc-coord
go build -o "$workdir/mallacc-ctl" ./cmd/mallacc-ctl

port_free() { ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; }
pick_ports() {
    local base try p
    for try in $(seq 1 20); do
        base=$((18000 + RANDOM % 20000))
        for p in 0 1 2 3 4 5 6 7 8 9; do port_free "$((base+p))" || continue 2; done
        echo "$base"
        return 0
    done
    return 1
}
base=$(pick_ports) || fail "no free port block found"

wait_live() { # wait_live <coord url> <count> <label>
    local url=$1 want=$2 label=$3 live=0
    for _ in $(seq 1 150); do
        live=$(curl -fsS "$url/v1/healthz" 2>/dev/null | jq -r .live || echo 0)
        [ "$live" = "$want" ] && return 0
        sleep 0.1
    done
    fail "$label never reached $want live nodes (live=$live)"
}

run_sweep() { # run_sweep <coord url> <out dir> <log>
    mkdir -p "$2"
    "$workdir/mallacc-ctl" -coord "$1" sweep -grid "$grid" \
        -out "$2" -parallel 2 -retries 4 >"$workdir/$3" 2>&1
}

check_reports() { # check_reports <dir> <label> — count + byte-identity vs reference
    local got
    got=$(ls "$1" | wc -l)
    [ "$got" = "$points" ] || fail "$2 wrote $got reports, want $points"
    mkdir -p "$1.norm"
    local f
    for f in "$1"/*.json; do jq -S . "$f" >"$1.norm/$(basename "$f")"; done
    diff -r "$workdir/reports_ref.norm" "$1.norm" \
        || fail "$2 reports differ from the static reference"
}

# --- 1. reference sweep on a static fleet -------------------------------
echo "membership-chaos: reference sweep on a static 3-node fleet"
static_spec="s1=127.0.0.1:$((base+1)),s2=127.0.0.1:$((base+2)),s3=127.0.0.1:$((base+3))"
for n in 1 2 3; do
    "$workdir/mallacc-serve" -addr "127.0.0.1:$((base+n))" \
        -fleet "$static_spec" -self "s$n" >"$workdir/static-s$n.log" 2>&1 &
    node_pid[s$n]=$!
done
"$workdir/mallacc-coord" -addr "127.0.0.1:$base" -nodes "$static_spec" \
    -probe-every 200ms >"$workdir/static-coord.log" 2>&1 &
coordA_pid=$!
wait_live "http://127.0.0.1:$base" 3 "static fleet"
run_sweep "http://127.0.0.1:$base" "$workdir/reports_ref" sweep_ref.log \
    || fail "reference sweep failed"
got=$(ls "$workdir/reports_ref" | wc -l)
[ "$got" = "$points" ] || fail "reference sweep wrote $got reports, want $points"
mkdir -p "$workdir/reports_ref.norm"
for f in "$workdir/reports_ref"/*.json; do
    jq -S . "$f" >"$workdir/reports_ref.norm/$(basename "$f")"
done
for n in s1 s2 s3; do
    kill -9 "${node_pid[$n]}" 2>/dev/null || true
    wait "${node_pid[$n]}" 2>/dev/null || true
    unset "node_pid[$n]"
done
kill "$coordA_pid" 2>/dev/null || true
wait "$coordA_pid" 2>/dev/null || true
coordA_pid=""
echo "membership-chaos: reference set ready ($points reports)"

# --- 2. dynamic fleet: zero-config nodes, gossiping coordinator pair ----
portA=$((base+4)); portB=$((base+5))
coordA="http://127.0.0.1:$portA"; coordB="http://127.0.0.1:$portB"
start_coord() { # start_coord <A|B> — pid lands in coordA_pid/coordB_pid
    local which=$1 port peer
    if [ "$which" = A ]; then port=$portA; peer=$coordB; else port=$portB; peer=$coordA; fi
    "$workdir/mallacc-coord" -addr "127.0.0.1:$port" -peers "$peer" \
        -probe-every 200ms -suspect-after 1s -dead-after 2s -gossip-every 200ms \
        >>"$workdir/coord$which.log" 2>&1 &
    eval "coord${which}_pid=$!"
}
start_node() { # start_node <name> <port> — joins both coordinators itself
    node_port[$1]=$2
    "$workdir/mallacc-serve" -addr "127.0.0.1:$2" -self "$1" \
        -coord "$coordA,$coordB" -heartbeat-every 200ms \
        >>"$workdir/$1.log" 2>&1 &
    node_pid[$1]=$!
}
start_coord A
start_coord B
start_node d1 $((base+6))
start_node d2 $((base+7))
start_node d3 $((base+8))
wait_live "$coordA" 3 "dynamic fleet (coord A)"
wait_live "$coordB" 3 "dynamic fleet (coord B)"
epoch=$(curl -fsS "$coordA/v1/healthz" | jq -r .epoch)
[ "$epoch" -ge 3 ] || fail "coord A epoch $epoch after 3 joins, want >= 3"
"$workdir/mallacc-ctl" -coord "$coordA" status >"$workdir/status1.txt" \
    || fail "ctl status failed"
grep -q "3/3 nodes live (epoch" "$workdir/status1.txt" \
    || fail "ctl status does not show 3/3 live with an epoch"
echo "membership-chaos: 3 nodes self-joined both coordinators (epoch $epoch)"

# --- 3. sweep under churn: join + kill -9 + coordinator restart ---------
run_sweep "$coordA" "$workdir/reports_churn" sweep_churn.log &
sweep_pid=$!
for _ in $(seq 1 300); do
    [ -n "$(ls -A "$workdir/reports_churn" 2>/dev/null)" ] && break
    kill -0 "$sweep_pid" 2>/dev/null || break
    sleep 0.1
done

start_node d4 $((base+9))
echo "membership-chaos: d4 joining mid-sweep"
kill -9 "${node_pid[d2]}" 2>/dev/null
wait "${node_pid[d2]}" 2>/dev/null || true
unset "node_pid[d2]"
echo "membership-chaos: killed d2 mid-sweep"
kill "$coordB_pid" 2>/dev/null || true
wait "$coordB_pid" 2>/dev/null || true
start_coord B
echo "membership-chaos: restarted coordinator B cold"

wait "$sweep_pid" || fail "churn sweep failed: $(tail -n 20 "$workdir/sweep_churn.log")"
check_reports "$workdir/reports_churn" "churn sweep"
echo "membership-chaos: churn sweep byte-identical to the static reference"

# Both coordinators converge on the post-churn view: d1/d3/d4 live, d2
# dead. The restarted B relearns everything from heartbeats and gossip.
wait_live "$coordA" 3 "post-churn fleet (coord A)"
wait_live "$coordB" 3 "post-churn fleet (coord B, restarted)"
d2state=""
for _ in $(seq 1 100); do
    d2state=$(curl -fsS "$coordA/v1/healthz" \
        | jq -r '.nodes[] | select(.name=="d2") | .state')
    [ "$d2state" = dead ] && break
    sleep 0.1
done
[ "$d2state" = dead ] || fail "d2 state on coord A is '$d2state', want dead"
echo "membership-chaos: failure detector declared d2 dead; coord B relearned the fleet"

# --- 4. warm sweep seeds every report onto its current ring owner -------
# (Reports d2 computed died with it; recomputes are expected and allowed
# here. Afterwards every key is cached on its owner in the d1/d3/d4 ring.)
run_sweep "$coordB" "$workdir/reports_warm" sweep_warm.log \
    || fail "warm sweep failed: $(tail -n 20 "$workdir/sweep_warm.log")"
check_reports "$workdir/reports_warm" "warm sweep"

# --- 5. graceful drain with hand-off: d3 departs, zero recomputes after -
misses_before=0
for n in d1 d4; do
    m=$(curl -fsS "http://127.0.0.1:${node_port[$n]}/v1/metrics" \
        | jq '."simsvc.runcache.misses"')
    misses_before=$((misses_before + m))
done
"$workdir/mallacc-ctl" -coord "$coordB" drain -handoff d3 \
    2>"$workdir/drain.txt" || fail "ctl drain -handoff failed"
grep -q "handoff d3: .* 0 failed" "$workdir/drain.txt" \
    || fail "hand-off reported failures: $(cat "$workdir/drain.txt")"
handoffs=$(curl -fsS "$coordB/v1/metrics" | jq '."fleet.membership.handoffs"')
[ "$handoffs" -ge 1 ] || fail "fleet.membership.handoffs = $handoffs, want >= 1"
kill "${node_pid[d3]}" 2>/dev/null || true
wait "${node_pid[d3]}" 2>/dev/null || true
unset "node_pid[d3]"
wait_live "$coordB" 2 "post-drain fleet"
echo "membership-chaos: d3 drained with hand-off and deregistered ($(grep -o 'handoff d3: .*' "$workdir/drain.txt"))"

run_sweep "$coordB" "$workdir/reports_final" sweep_final.log \
    || fail "post-drain sweep failed: $(tail -n 20 "$workdir/sweep_final.log")"
check_reports "$workdir/reports_final" "post-drain sweep"
misses_after=0
for n in d1 d4; do
    m=$(curl -fsS "http://127.0.0.1:${node_port[$n]}/v1/metrics" \
        | jq '."simsvc.runcache.misses"')
    misses_after=$((misses_after + m))
done
[ "$misses_after" = "$misses_before" ] \
    || fail "survivors recomputed after graceful drain: runcache.misses $misses_before -> $misses_after"
echo "membership-chaos: post-drain sweep recomputed nothing (runcache.misses flat at $misses_after)"

echo "membership-chaos: PASS"
