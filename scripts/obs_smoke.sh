#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the observability surface.
#
# Exercises the streaming-observability tentpole over real HTTP:
#   1. boots the daemon with a trace store and a fine progress cadence,
#   2. scrapes /v1/metrics?format=openmetrics and lints it with
#      scripts/promlint (grammar + required families), and checks the JSON
#      default is still the compact snapshot map,
#   3. records a trace server-side, then replays trace:<key> and checks the
#      report is byte-identical to running the source workload directly,
#   4. tails a running job's SSE stream and requires at least two progress
#      events followed by the terminal done event.
#
# Needs: go, curl, jq.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$workdir/serve.log" >&2 || true
    exit 1
}

echo "obs-smoke: building mallacc-serve and mallacc-sim"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve
go build -o "$workdir/mallacc-sim" ./cmd/mallacc-sim

"$workdir/mallacc-serve" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" \
    -trace-dir "$workdir/traces" -progress-every 50000 \
    >"$workdir/serve.log" 2>&1 &
server_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^mallacc-serve listening on \(http:\/\/[0-9.:]*\)$/\1/p' \
        "$workdir/serve.log" | head -n1)
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its listen address"
echo "obs-smoke: daemon up at $base"

# --- 2. OpenMetrics scrape lints clean; JSON default intact --------------
curl -fsS "$base/v1/metrics?format=openmetrics" >"$workdir/om.txt" \
    || fail "openmetrics scrape failed"
go run ./scripts/promlint \
    -require mallacc_simsvc_jobs_submitted,mallacc_simsvc_cache_hits,mallacc_simsvc_traces_recorded,mallacc_simsvc_sse_streams \
    <"$workdir/om.txt" || fail "exposition failed promlint"
curl -fsS "$base/v1/metrics" | jq -e '."simsvc.jobs.submitted" >= 0' >/dev/null \
    || fail "JSON metrics default lost the compact snapshot map"
ct=$(curl -fsSI "$base/v1/metrics?format=openmetrics" | tr -d '\r' \
    | sed -n 's/^[Cc]ontent-[Tt]ype: //p')
case "$ct" in application/openmetrics-text*) ;; *) fail "openmetrics Content-Type: $ct" ;; esac
echo "obs-smoke: openmetrics exposition lints clean"

# --- 3. record a trace, replay it byte-identically -----------------------
tracewl=$("$workdir/mallacc-sim" -serve "$base" -record-trace \
    -workload ubench.gauss -calls 20000 -seed 1 2>>"$workdir/serve.log") \
    || fail "remote trace record failed"
case "$tracewl" in trace:*) ;; *) fail "record returned no trace key: $tracewl" ;; esac
"$workdir/mallacc-sim" -serve "$base" -workload ubench.gauss -calls 20000 -seed 1 \
    -format json >"$workdir/direct.json" 2>/dev/null || fail "direct run failed"
"$workdir/mallacc-sim" -serve "$base" -workload "$tracewl" -calls 20000 -seed 1 \
    -format json >"$workdir/replay.json" 2>/dev/null || fail "trace replay failed"
cmp -s "$workdir/direct.json" "$workdir/replay.json" \
    || fail "trace replay is not byte-identical to the direct run"
echo "obs-smoke: trace $tracewl replayed byte-identically"

# --- 4. SSE stream delivers progress then done ---------------------------
job=$(curl -fsS -X POST -d '{"workload":"ubench.tp","calls":200000,"seed":9}' \
    "$base/v1/jobs") || fail "submit failed"
id=$(echo "$job" | jq -r .id)
curl -fsS -N --max-time 120 "$base/v1/jobs/$id/events" >"$workdir/events.txt" \
    || fail "event stream failed"
progress=$(grep -c '^event: progress$' "$workdir/events.txt" || true)
[ "$progress" -ge 2 ] || fail "only $progress progress events (want >= 2)"
grep -q '^event: done$' "$workdir/events.txt" || fail "stream had no done event"
echo "obs-smoke: SSE stream delivered $progress progress events and done"

echo "obs-smoke: PASS"
