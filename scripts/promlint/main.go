// Command promlint validates an OpenMetrics text exposition document read
// from stdin against the grammar subset the simulator emits (see
// telemetry.LintOpenMetrics): TYPE-declared contiguous families, type-correct
// sample suffixes, monotone histogram buckets, one trailing "# EOF".
//
// The smoke scripts pipe live /v1/metrics scrapes through it:
//
//	curl -fsS "$base/v1/metrics?format=openmetrics" | \
//	    go run ./scripts/promlint -require mallacc_simsvc_jobs_submitted
//
// -require names families (comma-separated, mangled form) that must appear;
// it catches a registry metric silently dropping out of the exposition.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mallacc/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated families that must be present")
	flag.Parse()

	doc, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("read stdin: %v", err)
	}
	if err := telemetry.LintOpenMetrics(doc); err != nil {
		fatal("%v", err)
	}

	families := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, _, ok := strings.Cut(rest, " "); ok {
				families[name] = true
			}
		}
	}
	if *require != "" {
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam != "" && !families[fam] {
				fatal("required family %q missing from exposition", fam)
			}
		}
	}
	fmt.Printf("promlint: OK (%d families)\n", len(families))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promlint: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
