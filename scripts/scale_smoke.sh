#!/usr/bin/env bash
# scale_smoke.sh — determinism smoke test of the barrier-phase parallel
# scheduler.
#
# The multicore engine runs one goroutine per simulated core and
# synchronizes only at epoch boundaries; its determinism contract is that
# telemetry is a pure function of (seed, core count) no matter how the Go
# runtime schedules those goroutines. This script stresses exactly that
# axis:
#
#   1. runs the seed-1 scale experiment (1..16 cores, serialized and
#      parallel engines) at GOMAXPROCS=1 — maximal interleaving through a
#      single OS thread — and at the host's full GOMAXPROCS, and requires
#      the two JSON reports to be byte-identical,
#   2. when the pinned digest results/metrics/multicore.json exists,
#      requires both reports to match it byte-for-byte (regenerate with
#      `make baseline` after an intentional simulator change).
#
# Needs: go. jq is used for nicer diagnostics when present.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

fail() {
    echo "scale-smoke: FAIL: $*" >&2
    exit 1
}

echo "scale-smoke: run at GOMAXPROCS=1"
GOMAXPROCS=1 go run ./cmd/mallacc-bench -run scale -format json -seed 1 \
    > "$workdir/p1.json"
echo "scale-smoke: run at host GOMAXPROCS"
go run ./cmd/mallacc-bench -run scale -format json -seed 1 \
    > "$workdir/pn.json"

cmp -s "$workdir/p1.json" "$workdir/pn.json" \
    || fail "GOMAXPROCS=1 and full-parallel runs differ (scheduler nondeterminism)"
echo "scale-smoke: reports byte-identical across GOMAXPROCS ($(wc -c <"$workdir/p1.json") bytes)"

pinned=results/metrics/multicore.json
if [ -f "$pinned" ]; then
    if ! cmp -s "$workdir/p1.json" "$pinned"; then
        if command -v jq >/dev/null 2>&1; then
            diff <(jq -S . "$pinned") <(jq -S . "$workdir/p1.json") | head -40 >&2 || true
        fi
        fail "report drifted from pinned $pinned (regenerate with 'make baseline' if intentional)"
    fi
    echo "scale-smoke: matches pinned $pinned"
else
    echo "scale-smoke: no pinned digest at $pinned (run 'make baseline' to create it)"
fi

echo "scale-smoke: PASS"
