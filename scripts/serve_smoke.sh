#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the mallacc-serve daemon.
#
# Exercises the full client path over real HTTP:
#   1. boots the daemon on an ephemeral loopback port,
#   2. submits a job with curl and polls it to completion,
#   3. resubmits the identical spec and checks the answer is served from
#      the cache with a byte-identical report and simsvc.cache.hits > 0,
#   4. sends SIGTERM while a long job is in flight and checks the daemon
#      drains cleanly with exit code 0.
#
# Needs: go, curl, jq.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$workdir/serve.log" >&2 || true
    exit 1
}

echo "serve-smoke: building mallacc-serve"
go build -o "$workdir/mallacc-serve" ./cmd/mallacc-serve

start_daemon() {
    "$workdir/mallacc-serve" -addr 127.0.0.1:0 -cache-dir "$workdir/cache" \
        >"$workdir/serve.log" 2>&1 &
    server_pid=$!
    # The daemon logs "mallacc-serve listening on http://<addr>" once the
    # listener is up; wait for it and parse the base URL.
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^mallacc-serve listening on \(http:\/\/[0-9.:]*\)$/\1/p' \
            "$workdir/serve.log" | head -n1)
        [ -n "$base" ] && break
        kill -0 "$server_pid" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.1
    done
    [ -n "$base" ] || fail "daemon never reported its listen address"
}

start_daemon
echo "serve-smoke: daemon up at $base"

spec='{"workload":"ubench.gauss","variant":"mallacc","calls":20000,"seed":1}'

# --- 2. submit and poll -------------------------------------------------
job=$(curl -fsS -X POST -d "$spec" "$base/v1/jobs") || fail "submit failed"
id=$(echo "$job" | jq -r .id)
state=$(echo "$job" | jq -r .state)
[ "$state" = queued ] || [ "$state" = running ] || [ "$state" = done ] \
    || fail "unexpected submit state: $state"

for _ in $(seq 1 300); do
    job=$(curl -fsS "$base/v1/jobs/$id") || fail "poll failed"
    state=$(echo "$job" | jq -r .state)
    case "$state" in
        done) break ;;
        failed|canceled) fail "job finished $state: $(echo "$job" | jq -r .error)" ;;
    esac
    sleep 0.1
done
[ "$state" = done ] || fail "job never finished (last state: $state)"
echo "$job" | jq .report >"$workdir/report1.json"
echo "serve-smoke: job $id done"

# --- 3. identical resubmission must be a cache hit ----------------------
job2=$(curl -fsS -X POST -d "$spec" "$base/v1/jobs") || fail "resubmit failed"
[ "$(echo "$job2" | jq -r .state)" = done ] || fail "resubmission not served as done"
[ "$(echo "$job2" | jq -r .cached)" = true ] || fail "resubmission not marked cached"
echo "$job2" | jq .report >"$workdir/report2.json"
cmp -s "$workdir/report1.json" "$workdir/report2.json" \
    || fail "cached report is not byte-identical"

hits=$(curl -fsS "$base/v1/metrics" | jq '."simsvc.cache.hits"')
[ "$hits" -ge 1 ] || fail "simsvc.cache.hits = $hits, want >= 1"
echo "serve-smoke: cached resubmission byte-identical (cache hits: $hits)"

# The OpenMetrics exposition of the same registry must lint clean and
# carry the scheduler's core family.
curl -fsS "$base/v1/metrics?format=openmetrics" \
    | go run ./scripts/promlint -require mallacc_simsvc_jobs_submitted \
    || fail "openmetrics exposition failed promlint"
echo "serve-smoke: openmetrics exposition lints clean"

# --- 4. SIGTERM with a job in flight drains cleanly ---------------------
long=$(curl -fsS -X POST -d '{"experiment":"fig13"}' "$base/v1/jobs") \
    || fail "long submit failed"
lid=$(echo "$long" | jq -r .id)
# Give the worker a beat to pick it up, then ask the daemon to stop.
sleep 0.3
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM (job $lid in flight)"
grep -q "drained cleanly" "$workdir/serve.log" || fail "daemon did not log a clean drain"
echo "serve-smoke: SIGTERM drained cleanly with job $lid in flight"

echo "serve-smoke: PASS"
